"""RL010 resource-lifecycle: every store/file/mmap opened in the
durable packages is closed on every path — exception paths included —
unless ownership is explicitly transferred.

A leaked ``FilePageStore`` is not an aesthetic problem here: the
journal replay on next open assumes the previous holder released the
file, mmap handles pin address space for the life of the worker, and
the reload path's whole contract is "the rejected store is closed
before ``ReloadRejected`` propagates".  The dynamic suites catch the
leak only when the leaked fd changes later behaviour; the CFG makes
the ``finally`` (or ``with``) obligation a structural fact.

Per function, each acquisition site (``open``/``os.fdopen``/
``mmap.mmap``/``FilePageStore``/``FilePageStore.open_existing``/
``MmapPageStore``) is tracked through OPEN → CLOSED/ESCAPED:

* ``v.close()`` closes; a ``with v:`` or ``with open(…) as v:`` block
  (or ``contextlib.closing(v)``) closes at the block's exit on both
  the normal and the exceptional path;
* ownership escapes when the value is returned or yielded, stored
  into an attribute/container (``self._file = open(…)`` hands the
  handle to the object's ``close``), or constructed *inline* in a
  call argument.  Passing an open *variable* to a callee is a borrow,
  not a transfer — ``PagedRTree.from_store(store)`` does not relieve
  the caller of closing ``store``;
* exceptional edges carry the in-state, so ``store = open_existing(p)``
  raising inside ``open_existing`` does not count as a leak, while an
  exception one statement later does.  Close effects survive onto
  exception edges (``close()`` releases even when it raises).

A site still OPEN when the exit or raise-exit node is reached is a
finding, anchored at the acquisition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import CFG, CFGNode, calls_in, functions, walk_exprs
from ..dataflow import run_forward
from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["ResourceLifecycle"]

#: Fully-resolved call names that acquire a closeable resource.
ACQUIRERS = ("open", "io.open", "os.fdopen", "mmap.mmap")
#: Suffix-matched (class methods reached through import aliases).
ACQUIRER_SUFFIXES = ("FilePageStore", "FilePageStore.open_existing",
                     "MmapPageStore")

CLOSED, ESCAPED, OPEN = 0, 1, 2

#: site id (acquisition lineno/col) -> lifecycle state
State = dict[tuple[int, int], int]


def _is_acquire(call: ast.Call, aliases: dict[str, str]) -> bool:
    name = resolve_call_name(call.func, aliases)
    if name is None:
        return False
    if name in ACQUIRERS:
        return True
    return any(name == suffix or name.endswith("." + suffix)
               for suffix in ACQUIRER_SUFFIXES)


def _merge(a: State, b: State) -> State:
    out = dict(a)
    for site, state in b.items():
        out[site] = max(out.get(site, CLOSED), state)
    return out


def _site(call: ast.Call) -> tuple[int, int]:
    return (call.lineno, call.col_offset)


@register
class ResourceLifecycle(Rule):
    id = "RL010"
    name = "resource-lifecycle"
    invariant = ("resources opened in the durable packages are closed "
                 "on every path, including exception edges, unless "
                 "ownership is transferred")
    path_fragments = ("repro/storage/", "repro/pipeline/",
                      "repro/ingest/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _qualname, func in functions(ctx.tree):
            yield from self._check_function(ctx, ctx.cfg(func))

    def _check_function(self, ctx: FileContext,
                        cfg: CFG) -> Iterator[Finding]:
        sites: dict[tuple[int, int], ast.Call] = {}
        # var -> sites it may hold (flow-insensitive alias sets; precise
        # enough because acquisition vars are single-assignment in
        # practice, and over-approximation only *closes* more).
        var_sites: dict[str, set[tuple[int, int]]] = {}
        # -- one syntactic pre-pass collects the acquisition sites ---------
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None or node.kind != "stmt":
                continue
            for call in calls_in(stmt):
                if _is_acquire(call, ctx.aliases):
                    sites[_site(call)] = call

        def transfer(node: CFGNode, state: State) -> State:
            stmt = node.stmt
            if stmt is None:
                return state
            if node.kind == "with-exit":
                out = dict(state)
                for site in self._with_bound_sites(stmt, ctx):
                    if out.get(site) == OPEN:
                        out[site] = CLOSED
                for var in self._with_closed_vars(stmt):
                    for site in var_sites.get(var, ()):
                        if out.get(site) == OPEN:
                            out[site] = CLOSED
                return out
            if node.kind != "stmt":
                return state
            out = dict(state)

            # acquisitions first: inline-in-call-arg escapes immediately
            for call in calls_in(stmt):
                if not _is_acquire(call, ctx.aliases):
                    continue
                out[_site(call)] = OPEN

            # v.close() / v.aclose()
            for call in calls_in(stmt):
                func = call.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in ("close", "aclose") \
                        and isinstance(func.value, ast.Name):
                    for site in var_sites.get(func.value.id, ()):
                        if out.get(site) == OPEN:
                            out[site] = CLOSED

            # escapes
            for site in self._escaped_sites(stmt, ctx, var_sites):
                if out.get(site) == OPEN:
                    out[site] = ESCAPED

            # bindings: remember which vars hold which sites
            self._record_bindings(stmt, ctx, var_sites)
            return out

        def exc_transfer(node: CFGNode, state: State) -> State:
            # close and escape effects survive an exception
            # mid-statement: `f.close()` raising still released, and a
            # `return f` raising mid-evaluation is not this function's
            # leak to report
            stmt = node.stmt
            if stmt is None or node.kind != "stmt":
                return state
            out = dict(state)
            for call in calls_in(stmt):
                func = call.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in ("close", "aclose") \
                        and isinstance(func.value, ast.Name):
                    for site in var_sites.get(func.value.id, ()):
                        if out.get(site) == OPEN:
                            out[site] = CLOSED
            for site in self._escaped_sites(stmt, ctx, var_sites):
                if out.get(site) == OPEN:
                    out[site] = ESCAPED
            return out

        sol = run_forward(cfg, init={}, transfer=transfer, merge=_merge,
                          exc_transfer=exc_transfer)
        leaks: dict[tuple[int, int], str] = {}
        for exit_id, where in ((cfg.exit, "at function exit"),
                               (cfg.raise_exit, "on an exception path")):
            state = sol.before[exit_id]
            if state is None:
                continue
            for site, value in state.items():
                if value == OPEN and site not in leaks:
                    leaks[site] = where
        for site, where in sorted(leaks.items()):
            call = sites.get(site)
            if call is None:
                continue
            name = resolve_call_name(call.func, ctx.aliases) or "resource"
            yield self.finding(
                ctx, call,
                f"{name} opened here is not closed {where} in "
                f"{cfg.func.name!r}; close it on every path (with/"
                f"finally) or transfer ownership explicitly")

    # -- syntactic helpers -------------------------------------------------

    def _with_bound_sites(self, stmt: ast.stmt,
                          ctx: FileContext) -> Iterator[tuple[int, int]]:
        """Acquisitions made in this ``with`` header (``with open(…)
        as f:`` and the unbound ``with open(…):`` alike) — the block
        exit closes them."""
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                if _is_acquire(expr, ctx.aliases):
                    yield _site(expr)
                # contextlib.closing(v) handled via _with_closed_vars

    def _with_closed_vars(self, stmt: ast.stmt) -> Iterator[str]:
        """Variables whose resource this ``with`` exit closes:
        ``with v:`` and ``with contextlib.closing(v):``."""
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                yield expr.id
            elif isinstance(expr, ast.Call) and expr.args \
                    and isinstance(expr.args[0], ast.Name) \
                    and isinstance(expr.func, (ast.Name, ast.Attribute)):
                attr = (expr.func.attr if isinstance(expr.func,
                                                     ast.Attribute)
                        else expr.func.id)
                if attr == "closing":
                    yield expr.args[0].id

    def _record_bindings(self, stmt: ast.stmt, ctx: FileContext,
                         var_sites: dict[str, set[tuple[int, int]]]
                         ) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            var = stmt.targets[0].id
            if isinstance(stmt.value, ast.Call) \
                    and _is_acquire(stmt.value, ctx.aliases):
                var_sites.setdefault(var, set()).add(_site(stmt.value))
            elif isinstance(stmt.value, ast.Name):
                src = var_sites.get(stmt.value.id)
                if src:
                    var_sites.setdefault(var, set()).update(src)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name) \
                        and isinstance(item.context_expr, ast.Call) \
                        and _is_acquire(item.context_expr, ctx.aliases):
                    var_sites.setdefault(item.optional_vars.id,
                                         set()).add(
                        _site(item.context_expr))

    def _escaped_sites(self, stmt: ast.stmt, ctx: FileContext,
                       var_sites: dict[str, set[tuple[int, int]]]
                       ) -> Iterator[tuple[int, int]]:
        # return/yield of the variable, an expression containing it, or
        # an inline acquisition (`return open(p)` hands off ownership)
        for node in walk_exprs(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    yield from self._sites_in(value, var_sites)
                    yield from self._inline_acquires(value, ctx)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            yield from self._sites_in(stmt.value, var_sites)
            yield from self._inline_acquires(stmt.value, ctx)
        # assignment to a non-Name target: attribute/subscript stores
        # transfer ownership (self._file = f; registry[k] = store)
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                value = getattr(stmt, "value", None)
                if value is not None:
                    yield from self._sites_in(value, var_sites)
                    for call in ast.walk(value):
                        if isinstance(call, ast.Call) \
                                and _is_acquire(call, ctx.aliases):
                            yield _site(call)
        # tuple-unpacking or value containing the var beyond a bare name
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and not isinstance(stmt.value, (ast.Call, ast.Name)):
            yield from self._sites_in(stmt.value, var_sites)
        # inline construction in a call argument: handed to the callee
        for call in calls_in(stmt):
            for arg in [*call.args,
                        *(kw.value for kw in call.keywords)]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) \
                            and _is_acquire(sub, ctx.aliases):
                        yield _site(sub)

    def _inline_acquires(self, expr: ast.expr, ctx: FileContext
                         ) -> Iterator[tuple[int, int]]:
        for call in ast.walk(expr):
            if isinstance(call, ast.Call) \
                    and _is_acquire(call, ctx.aliases):
                yield _site(call)

    def _sites_in(self, expr: ast.expr,
                  var_sites: dict[str, set[tuple[int, int]]]
                  ) -> Iterator[tuple[int, int]]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                yield from var_sites.get(node.id, ())
