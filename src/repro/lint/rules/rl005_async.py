"""RL005 async-blocking: the serving event loop never blocks.

PR 3's serving layer promises cooperative multitasking: deadlines are
checked between node visits, admission control sheds load, and every
slow operation (tree walks, fsck-verify on reload) runs in the
executor via ``loop.run_in_executor``.  One synchronous ``open()`` or
``time.sleep`` directly inside a coroutine freezes *every* in-flight
request and silently voids the p99 SLO.

Flagged, for ``async def`` bodies under ``serve/``: calls to
``time.sleep``, the builtin ``open``, ``os.system``, any
``subprocess.*`` entry point, and ``socket.create_connection``.

Synchronous helper *functions* in the same files stay legal — the
pattern is exactly to put blocking work in a sync method and dispatch
it with ``run_in_executor`` (see ``QueryServer._reload_blocking``).
Nested synchronous ``def``s inside a coroutine are treated as such
helpers and not descended into.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["AsyncBlocking"]

BANNED = {
    "time.sleep": "blocks the event loop; use await asyncio.sleep",
    "open": "blocking file I/O in a coroutine; run it in the executor",
    "os.system": "blocking subprocess in a coroutine; use "
                 "asyncio.create_subprocess_exec",
    "socket.create_connection": "blocking connect in a coroutine; use "
                                "asyncio.open_connection",
}

SUBPROCESS_PREFIX = "subprocess."


def _shallow_walk(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without entering nested function/lambda scopes."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncBlocking(Rule):
    id = "RL005"
    name = "async-blocking"
    invariant = ("coroutines in the serving layer never call blocking "
                 "primitives; slow work goes through run_in_executor")
    path_fragments = ("repro/serve/", "repro/ingest/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _shallow_walk(func.body):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call_name(node.func, ctx.aliases)
                if name is None:
                    continue
                if name in BANNED:
                    why = BANNED[name]
                elif name.startswith(SUBPROCESS_PREFIX):
                    why = ("blocking subprocess in a coroutine; use "
                           "asyncio.create_subprocess_exec")
                else:
                    continue
                yield self.finding(
                    ctx, node,
                    f"call to {name} in coroutine "
                    f"{func.name!r}: {why}",
                )
