"""RL008 durability-ordering: fsync *before* the publishing rename,
WAL fsync *before* the ack.

RL002 pins *where* renames may happen (the blessed staging helpers);
this rule checks *that the blessed helpers are actually safe*: on
every path to an ``os.replace`` that publishes a file, the temporary
it publishes was written, flushed, and fsynced on the same handle.  A
rename of still-buffered bytes is exactly the torn-file bug the crash
matrix exists to catch — but the crash matrix only sees schedules it
samples; the dataflow proof covers every path, including the branch
nobody's test takes.

Two checks, both flow-sensitive over :mod:`repro.lint.cfg`:

**Rename dominance.**  Per file handle the analysis tracks
``(dirty_buffer, dirty_file, fsync_ever)`` — bytes sitting in the
userspace buffer, bytes in the OS page cache not yet on disk, and
whether the handle was ever fsynced — plus the unparsed source
expression the handle was opened on.  ``write``/``writelines`` (or
passing the handle to any function, which covers ``np.save(f, a)``
and ``json.dump(obj, f)``) dirty the buffer; ``flush`` moves buffer
to file; ``os.fsync(h.fileno())`` cleans the file; ``close`` and the
``with`` exit flush implicitly.  At an ``os.replace(src, dst)`` some
handle opened on exactly ``src`` must be fully clean and fsynced on
*every* path reaching the rename.  Merges are conservative: a branch
that skips the fsync poisons the join.  Renames in functions that
never open a writable handle and whose source expression does not
mention a temporary are out of scope — they move already-durable
files (segment GC, directory shuffles), which is RL002's beat.

**Ack dominance.**  The ingest ack points
(:meth:`WriteAheadLog.append`, :meth:`IngestState.append`) promise
"when this returns, the op is durable".  Each is checked with a
must-analysis: every ``return`` must be dominated by the call that
makes the op durable (``self._physical_append`` / ``self.wal.append``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import CFG, CFGNode, calls_in, functions
from ..dataflow import run_forward
from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["DurabilityOrdering"]

RENAMES = ("os.rename", "os.replace", "os.renames", "shutil.move")
OPENS = ("open", "io.open", "os.fdopen")

#: (path fragment, function qualname) -> call patterns that make the
#: op durable before the function's returns may ack it.
ACK_PROTOCOLS: dict[tuple[str, str], frozenset[str]] = {
    ("repro/ingest/wal.py", "WriteAheadLog.append"):
        frozenset({"self._physical_append", "os.fsync"}),
    ("repro/ingest/state.py", "IngestState.append"):
        frozenset({"self.wal.append"}),
}

#: handle state: (dirty_buffer, dirty_file, fsync_ever, src_expr)
Handle = tuple[bool, bool, bool, str]
State = dict[str, Handle]


def _writable_open(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The unparsed path expression when ``call`` opens a writable
    handle, else ``None``."""
    name = resolve_call_name(call.func, aliases)
    if name not in OPENS or not call.args:
        return None
    mode: ast.expr | None = call.args[1] if len(call.args) > 1 else None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None  # default "r"
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return ast.unparse(call.args[0])  # dynamic mode: assume writable
    if any(ch in mode.value for ch in "wax+"):
        return ast.unparse(call.args[0])
    return None


def _method_target(call: ast.Call) -> tuple[str, str] | None:
    """``(var, method)`` for a ``var.method(...)`` call."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _fsync_target(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The handle variable of an ``os.fsync(h.fileno())`` call."""
    if resolve_call_name(call.func, aliases) != "os.fsync" or not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Call):
        target = _method_target(arg)
        if target is not None and target[1] == "fileno":
            return target[0]
    if isinstance(arg, ast.Name):
        return arg.id
    return None


def _merge(a: State, b: State) -> State:
    out: State = {}
    for var in a.keys() & b.keys():
        ha, hb = a[var], b[var]
        if ha[3] != hb[3]:
            continue  # rebound to a different source: unusable
        out[var] = (ha[0] or hb[0], ha[1] or hb[1],
                    ha[2] and hb[2], ha[3])
    return out


@register
class DurabilityOrdering(Rule):
    id = "RL008"
    name = "durability-ordering"
    invariant = ("publishing renames are dominated by write, flush, "
                 "fsync on the published handle; ingest acks are "
                 "dominated by the WAL fsync")
    path_fragments = (
        # the RL002-blessed rename modules…
        "repro/pipeline/staging.py",
        "repro/storage/store.py",
        "repro/storage/journal.py",
        "repro/core/packing/external.py",
        # …and the ack points
        "repro/ingest/wal.py",
        "repro/ingest/state.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for qualname, func in functions(ctx.tree):
            cfg = ctx.cfg(func)
            yield from self._check_renames(ctx, cfg)
            for (frag, name), durable in ACK_PROTOCOLS.items():
                if frag in ctx.path and name == qualname:
                    yield from self._check_ack(ctx, cfg, durable)

    # -- rename dominance --------------------------------------------------

    def _check_renames(self, ctx: FileContext,
                       cfg: CFG) -> Iterator[Finding]:
        opens_writable = any(
            _writable_open(node, ctx.aliases) is not None
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Call))

        def transfer(node: CFGNode, state: State) -> State:
            return self._transfer(node, state, ctx)

        sol = run_forward(cfg, init={}, transfer=transfer, merge=_merge)
        for node in cfg.nodes:
            state = sol.before[node.id]
            if state is None or node.stmt is None:
                continue
            for call in calls_in(node.stmt):
                name = resolve_call_name(call.func, ctx.aliases)
                if name not in RENAMES or not call.args:
                    continue
                src = ast.unparse(call.args[0])
                if not opens_writable and "tmp" not in src.lower():
                    continue  # moves an already-durable file
                handles = [h for h in state.values() if h[3] == src]
                if any(h[:3] == (False, False, True) for h in handles):
                    continue
                if handles:
                    why = ("its handle was not flushed and fsynced "
                           "on every path to the rename")
                else:
                    why = ("no handle opened on that expression is "
                           "live here")
                yield self.finding(
                    ctx, call,
                    f"{name} publishes {src} but {why}; the durable "
                    f"order is write, flush, os.fsync, then rename")

    def _transfer(self, node: CFGNode, state: State,
                  ctx: FileContext) -> State:
        stmt = node.stmt
        if stmt is None:
            return state
        if node.kind == "with-exit":
            # __exit__ == close: buffered bytes reach the file.
            return self._close_with_vars(stmt, state)
        out = dict(state)
        for call in calls_in(stmt):
            fsynced = _fsync_target(call, ctx.aliases)
            if fsynced is not None:
                if fsynced in out:
                    h = out[fsynced]
                    out[fsynced] = (h[0], False, True, h[3])
                continue
            target = _method_target(call)
            if target is not None and target[0] in out:
                var, method = target
                h = out[var]
                if method in ("write", "writelines"):
                    out[var] = (True, h[1], h[2], h[3])
                elif method == "flush":
                    out[var] = (False, h[1] or h[0], h[2], h[3])
                elif method == "close":
                    out[var] = (False, h[1] or h[0], h[2], h[3])
                elif method == "truncate":
                    out[var] = (h[0], True, h[2], h[3])
                # seek/tell/fileno/read: no durability effect
                continue
            # The handle passed to any other callable: assume it wrote.
            for arg in [*call.args, *(kw.value for kw in call.keywords)]:
                if isinstance(arg, ast.Name) and arg.id in out:
                    h = out[arg.id]
                    out[arg.id] = (True, h[1], h[2], h[3])
        # (re)bindings last: `f = open(...)` sees the open, not a write
        for var, src in self._bindings(stmt, ctx):
            if src is None:
                out.pop(var, None)
            else:
                out[var] = (False, False, False, src)
        return out

    def _bindings(self, stmt: ast.stmt, ctx: FileContext
                  ) -> Iterator[tuple[str, str | None]]:
        """``(var, src_expr | None)`` for handle (re)bindings in one
        statement; ``None`` means the var now holds something else."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            var = stmt.targets[0].id
            src = (_writable_open(stmt.value, ctx.aliases)
                   if isinstance(stmt.value, ast.Call) else None)
            yield var, src
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if not isinstance(item.optional_vars, ast.Name):
                    continue
                if not isinstance(item.context_expr, ast.Call):
                    continue
                src = _writable_open(item.context_expr, ctx.aliases)
                if src is not None:
                    yield item.optional_vars.id, src

    def _close_with_vars(self, stmt: ast.stmt, state: State) -> State:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return state
        out = dict(state)
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                var = item.optional_vars.id
                if var in out:
                    h = out[var]
                    out[var] = (False, h[1] or h[0], h[2], h[3])
        return out

    # -- ack dominance -----------------------------------------------------

    def _check_ack(self, ctx: FileContext, cfg: CFG,
                   durable_calls: frozenset[str]) -> Iterator[Finding]:
        def makes_durable(stmt: ast.stmt) -> bool:
            for call in calls_in(stmt):
                name = ast.unparse(call.func)
                resolved = resolve_call_name(call.func, ctx.aliases)
                if name in durable_calls or resolved in durable_calls:
                    return True
            return False

        def transfer(node: CFGNode, durable: bool) -> bool:
            if node.stmt is not None and makes_durable(node.stmt):
                return True
            return durable

        sol = run_forward(cfg, init=False, transfer=transfer,
                          merge=lambda a, b: a and b)
        for node in cfg.nodes:
            if not isinstance(node.stmt, ast.Return) or node.kind != "stmt":
                continue
            durable = sol.after[node.id]
            if durable is False:
                yield self.finding(
                    ctx, node.stmt,
                    f"{cfg.func.name!r} acks (returns) on a path not "
                    f"dominated by its durability call "
                    f"({', '.join(sorted(durable_calls))}); the WAL "
                    f"fsync is the ack point")
