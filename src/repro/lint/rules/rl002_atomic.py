"""RL002 atomic-publication: renames happen only in blessed helpers.

PR 2's durability story and PR 4's resumable staging both hinge on a
single publication idiom: write to a ``*.tmp-<pid>`` sibling, fsync,
then ``os.replace`` onto the final name — and on that idiom living in
a handful of audited helpers.  A raw ``os.rename`` sprinkled anywhere
else can publish a torn file that fsck then has to distrust, or race
the journal's recovery sweep.

Flagged: any call to ``os.rename``, ``os.replace``, ``os.renames`` or
``shutil.move`` outside the blessed modules.

Blessed (each implements or consumes the fsync-then-rename protocol):
``pipeline/staging.py`` (the staging helpers themselves),
``storage/store.py`` / ``storage/journal.py`` (superblock commit and
journal rotation), and ``core/packing/external.py`` (external-sort
spill runs, crash-clean since PR 4).  New publication sites must call
:func:`repro.pipeline.staging.atomic_write_bytes` and friends instead
of earning a spot on this list.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["AtomicPublication"]

BANNED = ("os.rename", "os.replace", "os.renames", "shutil.move")

#: Modules allowed to move files into place.
BLESSED = (
    "repro/pipeline/staging.py",
    "repro/storage/store.py",
    "repro/storage/journal.py",
    "repro/core/packing/external.py",
)


@register
class AtomicPublication(Rule):
    id = "RL002"
    name = "atomic-publication"
    invariant = ("files are published only via the blessed "
                 "fsync-then-rename staging helpers")
    path_fragments = ()  # every file, minus the blessed list below

    def applies_to(self, path: str) -> bool:
        return not any(path.endswith(blessed) for blessed in BLESSED)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, ctx.aliases)
            if name in BANNED:
                yield self.finding(
                    ctx, node,
                    f"raw {name} outside the blessed staging helpers; "
                    f"publish via repro.pipeline.staging "
                    f"(fsync-then-rename) instead",
                )
