"""RL006 worker-picklability: the shard worker survives ``spawn``.

PR 4's parallel builder launches shard workers with whatever start
method the platform offers; under ``spawn`` the worker module is
re-imported in a fresh interpreter and the entry-point spec is
pickled.  Two things quietly break that: module-global *mutable*
state (each spawned worker re-initialises its own copy, so a value
mutated in the parent never reaches the child — byte-identity bugs
that only appear on macOS/Windows), and module-level ``lambda``s
(unpicklable the moment one lands in a spec or is handed to
``Process(target=...)``).

Flagged, for ``pipeline/worker.py`` and the serving pool's
spawn-crossing modules (``serve/pool.py``, ``serve/supervisor.py``,
whose ``worker_main`` and :class:`TreeSpec` are shipped to child
processes the same way): module-level assignments whose value is a
mutable container (list/dict/set/bytearray literal or constructor,
``collections`` mutables), and ``lambda`` expressions in module-level
statements.

Immutable module constants (``DONE_FORMAT = "..."``, tuples,
``frozenset``) and state created *inside* ``run_shard`` /
``worker_main`` stay legal — per-shard state belongs in function
scope, where every attempt starts fresh.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["WorkerPicklability"]

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp)

MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict", "threading.Event", "threading.Lock",
})


def _target_name(node: ast.Assign | ast.AnnAssign) -> str:
    if isinstance(node, ast.AnnAssign):
        targets: list[ast.expr] = [node.target]
    else:
        targets = node.targets
    names = [t.id for t in targets if isinstance(t, ast.Name)]
    return ", ".join(names) if names else "<target>"


@register
class WorkerPicklability(Rule):
    id = "RL006"
    name = "worker-picklability"
    invariant = ("spawn-crossing worker modules hold no module-global "
                 "mutable state and nothing unpicklable under spawn")
    path_fragments = ("repro/pipeline/worker.py", "repro/serve/pool.py",
                      "repro/serve/supervisor.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                name = _target_name(stmt)
                # Dunder module metadata (__all__ etc.) is interpreter
                # convention, never worker state.
                if value is None or name.startswith("__"):
                    continue
                if self._is_mutable(value, ctx):
                    yield self.finding(
                        ctx, stmt,
                        f"module-global mutable {_target_name(stmt)!r}: "
                        f"spawn re-imports the worker module, so mutated "
                        f"globals never reach the child; move it into "
                        f"run_shard scope or make it immutable",
                    )
            for node in ast.walk(stmt):
                if isinstance(node, ast.Lambda) and not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
                    yield self.finding(
                        ctx, node,
                        "module-level lambda is unpicklable under spawn; "
                        "define a named module-level function",
                    )

    def _is_mutable(self, value: ast.expr, ctx: FileContext) -> bool:
        if isinstance(value, MUTABLE_LITERALS):
            return True
        if isinstance(value, ast.Call):
            name = resolve_call_name(value.func, ctx.aliases)
            return name in MUTABLE_CONSTRUCTORS
        return False
