"""RL001 no-wallclock-or-rng: determinism of the measured core.

The paper's metric — exact disk accesses per query — and the parallel
builder's byte-identical guarantee both die the moment code in the
measured core reads the wall clock or an unseeded RNG.  Everything
under ``core/``, ``rtree/``, ``pipeline/`` and ``storage/`` must be a
pure function of its inputs: clocks and randomness arrive as *injected
parameters* (``clock=time.monotonic`` defaults, explicit ``seed=``
arguments), never as ambient calls.

Flagged: calls to ``time.time``/``time.time_ns``, any ``random.*``
module-level function (global RNG state), argless ``random.Random()``,
``os.urandom``, argless ``datetime.now()`` / ``datetime.utcnow``, any
``numpy.random.*`` legacy global-state function, and argless
``numpy.random.default_rng()``.

Allowed: ``numpy.random.default_rng(seed)`` / ``random.Random(seed)``
(seeded construction), ``datetime.now(tz)`` (explicit timezone —
manifest timestamps), and banned functions *referenced* (not called)
as parameter defaults — that is exactly the injection idiom
(``def __init__(self, clock=time.monotonic)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["NoWallclockOrRng"]

#: Nondeterministic no matter how they are called.
EXACT_BANNED = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "os.urandom": "reads OS entropy",
    "datetime.utcnow": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
}

#: Banned only when called with no arguments (the argful form is the
#: injected/seeded idiom).
ARGLESS_BANNED = {
    "datetime.now": "reads the wall clock (pass an explicit tz upstream)",
    "datetime.datetime.now": "reads the wall clock (pass an explicit tz "
                             "upstream)",
    "numpy.random.default_rng": "seeds from OS entropy",
    "random.Random": "seeds from OS entropy",
}

#: Prefixes whose *other* members touch global RNG state.
BANNED_PREFIXES = ("random.", "numpy.random.")

#: Seeded-construction entry points exempt from the prefix ban.
SEEDED_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "random.Random",
}


@register
class NoWallclockOrRng(Rule):
    id = "RL001"
    name = "no-wallclock-or-rng"
    invariant = ("code in the measured/replayed core is deterministic: "
                 "clocks and RNGs are injected, never ambient")
    path_fragments = ("repro/core/", "repro/rtree/", "repro/pipeline/",
                      "repro/storage/", "repro/ingest/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, ctx.aliases)
            if name is None:
                continue
            argless = not node.args and not node.keywords
            if name in EXACT_BANNED:
                why = EXACT_BANNED[name]
            elif name in ARGLESS_BANNED and argless:
                why = ARGLESS_BANNED[name]
            elif (name.startswith(BANNED_PREFIXES)
                    and name not in SEEDED_OK
                    and name not in ARGLESS_BANNED):
                why = "uses global RNG state"
            else:
                continue
            yield self.finding(
                ctx, node,
                f"call to {name} {why}; inject a seeded rng / clock "
                f"parameter instead",
            )
