"""AST-walking lint engine enforcing the repo's invariant contracts.

The guarantees PRs 1-4 built — bit-identical ``mean_accesses`` under
tracing, fsync-then-rename atomic publication, typed error taxonomies,
byte-identical parallel builds, a never-blocking asyncio serving loop —
exist in the code only as conventions.  Dynamic tests catch violations
after a 2000-query chaos soak; this engine catches them at commit time
by walking every file's AST with a set of pluggable, project-specific
rules (``repro.lint.rules``).

Pieces
------
:class:`Finding`
    One rule violation: rule id, file, position, message.  Its
    :meth:`~Finding.key` is deliberately line-number-free so baselines
    survive unrelated edits above a finding.
:class:`Rule`
    Base class; concrete rules register themselves with
    :func:`register` and restrict themselves to the package paths whose
    contract they guard via ``path_pattern``.
:class:`FileContext`
    Everything a rule may look at for one file: source, AST, the
    resolved import-alias table, and suppression comments.
:class:`Baseline`
    A committed JSON map of finding keys -> occurrence counts.  Lint
    exits clean when every finding is baselined; the repo's committed
    baseline for ``src/`` is empty and must stay empty.
:class:`LintEngine` / :class:`LintReport`
    Discovery, per-file dispatch, suppression accounting, text/JSON
    rendering, and the manifest payload the CLI stores beside
    benchmark runs.

Suppressions
------------
A trailing comment silences named rules on that line::

    self._skew = time.time() - time.monotonic()  # repro-lint: disable=RL001 -- mtime calibration

``disable=all`` silences every rule on the line; a whole file opts out
of one rule with ``# repro-lint: disable-file=RL005`` on a line of its
own.  Suppressions are counted and reported, never silent.
"""

from __future__ import annotations

import ast
import io
import json
import os
import time
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "BASELINE_FORMAT",
    "Baseline",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "all_rules",
    "register",
    "resolve_call_name",
]

BASELINE_FORMAT = "repro-lint-baseline-v1"

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_RULE = "RL000"

_SUPPRESS_PREFIX = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one source position."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str

    def key(self) -> str:
        """Baseline identity: path + rule + message, no line number, so
        a baselined finding survives edits elsewhere in the file."""
        return f"{self.path}::{self.rule}::{self.message}"

    def as_dict(self) -> dict:
        """JSON-able form (the ``--format json`` / manifest shape)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`.
    ``path_pattern`` is a substring-or-regex-free applicability test:
    a tuple of posix path fragments; the rule runs on files whose
    repo-relative path contains any fragment.  An empty tuple means
    every file.
    """

    id: str = ""
    name: str = ""
    #: One-line statement of the invariant the rule guards.
    invariant: str = ""
    #: Posix path fragments selecting the files under contract.
    path_fragments: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Is this repo-relative path under the rule's contract?"""
        if not self.path_fragments:
            return True
        return any(frag in path for frag in self.path_fragments)

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield one :class:`Finding` per violation in ``ctx``."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str) -> Finding:
        """A :class:`Finding` for this rule at ``node``'s position."""
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in _REGISTRY and type(_REGISTRY[rule.id]) is not cls:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (imports the rule package
    so registration is a side effect of first use, not of import order)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# -- import-alias resolution -------------------------------------------------


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/attribute they denote.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import time as now`` -> ``{"now": "time.time"}``.
    Relative imports keep their dots (``from ..storage import x`` ->
    ``{"x": "..storage.x"}``) so rules can still recognise them.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{module}.{alias.name}" if module else alias.name
                )
    return aliases


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(func: ast.AST, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted name a call target denotes, with the
    file's import aliases expanded (``np.random.rand`` ->
    ``numpy.random.rand``; ``now`` -> ``time.time``)."""
    dotted = _dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


# -- suppression comments ----------------------------------------------------


def _parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> rule ids disabled on it, rule ids disabled file-wide)``.

    Uses the tokenizer, not a regex over raw lines, so the directive is
    only honoured in real comments — a string literal containing
    ``repro-lint:`` does not suppress anything.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return per_line, per_file
    for line, text in comments:
        body = text.lstrip("#").strip()
        if not body.startswith(_SUPPRESS_PREFIX):
            continue
        directive = body[len(_SUPPRESS_PREFIX):].strip()
        # Anything after ` -- ` is a human-facing justification.
        directive = directive.split(" -- ")[0].strip()
        for key, target in (("disable-file=", per_file), ("disable=", None)):
            if not directive.startswith(key):
                continue
            ids = {part.strip().upper() for part in
                   directive[len(key):].split(",") if part.strip()}
            if target is not None:
                target.update(ids)
            else:
                per_line.setdefault(line, set()).update(ids)
            break
    return per_line, per_file


@dataclass
class FileContext:
    """Everything rules may inspect about one file."""

    path: str  # repo-relative, posix
    source: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    _cfgs: dict = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source)
        return cls(path=path, source=source, tree=tree,
                   aliases=_collect_aliases(tree))

    def cfg(self, func: ast.AST):
        """The function's control-flow graph (built once per file
        context, shared by every flow-sensitive rule)."""
        key = id(func)
        hit = self._cfgs.get(key)
        if hit is None:
            from .cfg import build_cfg  # lazy: most rules never need it
            hit = (func, build_cfg(func))
            self._cfgs[key] = hit
        return hit[1]


# -- baseline ----------------------------------------------------------------


class Baseline:
    """A committed map of known findings, matched by :meth:`Finding.key`.

    Each key carries the number of occurrences grandfathered in, so a
    *new* instance of an already-baselined pattern in the same file
    still fails the build.
    """

    def __init__(self, counts: dict[str, int] | None = None):
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Baseline":
        with open(os.fspath(path)) as f:
            data = json.load(f)
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"{path}: not a {BASELINE_FORMAT} file "
                f"(format={data.get('format')!r})"
            )
        counts = {str(k): int(v) for k, v in data.get("findings", {}).items()}
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.key()] = counts.get(f.key(), 0) + 1
        return cls(counts)

    def write(self, path: str | os.PathLike) -> str:
        """Serialise to ``path`` (sorted keys, trailing newline)."""
        path = os.fspath(path)
        with open(path, "w") as f:
            json.dump({"format": BASELINE_FORMAT,
                       "findings": dict(sorted(self.counts.items()))},
                      f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """``(new, baselined)`` — per-key occurrences beyond the
        grandfathered count are new."""
        seen: dict[str, int] = {}
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            key = f.key()
            seen[key] = seen.get(key, 0) + 1
            (old if seen[key] <= self.counts.get(key, 0) else new).append(f)
        return new, old

    def stale_keys(self, findings: list[Finding]) -> list[str]:
        """Baseline entries matching no current finding — drift that
        means the grandfathered violation was fixed (or moved) and the
        entry should be pruned so it cannot mask a future regression."""
        live = {f.key() for f in findings}
        return sorted(key for key in self.counts if key not in live)


# -- engine ------------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)
    #: wall seconds spent in each rule's check(), summed over files
    rule_seconds: dict[str, float] = field(default_factory=dict)
    #: baseline keys matching no current finding (drift; fails the run)
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        """JSON-able report (stored under ``extra.lint`` in manifests)."""
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "rule_seconds": {rule: round(secs, 6) for rule, secs
                             in sorted(self.rule_seconds.items())},
            "suppressed": self.suppressed,
            "baselined": [f.as_dict() for f in self.baselined],
            "findings": [f.as_dict() for f in self.findings],
            "stale_baseline": list(self.stale_baseline),
        }

    def to_json(self) -> str:
        """The :meth:`as_dict` report as pretty-printed JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """One line per finding plus a trailing verdict summary line."""
        lines = [f.render() for f in self.findings]
        for key in self.stale_baseline:
            lines.append(f"stale baseline entry (no matching finding): "
                         f"{key}")
        verdict = ("clean" if self.clean
                   else f"{len(self.findings)} finding(s)")
        summary = (
            f"repro lint: {verdict} — {self.files_checked} file(s), "
            f"{len(self.rules)} rule(s), {self.suppressed} suppressed, "
            f"{len(self.baselined)} baselined"
        )
        if self.stale_baseline:
            summary += (f", {len(self.stale_baseline)} stale baseline "
                        f"key(s)")
        lines.append(summary)
        return "\n".join(lines)


class LintEngine:
    """Discovers files, dispatches rules, applies suppressions and the
    baseline, and aggregates a :class:`LintReport`."""

    def __init__(self, rules: Iterable[Rule] | None = None, *,
                 root: str | os.PathLike = ".",
                 baseline: Baseline | None = None):
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = os.fspath(root)
        self.baseline = baseline if baseline is not None else Baseline()
        self._rule_seconds: dict[str, float] = {}

    # -- discovery -----------------------------------------------------------

    def discover(self, paths: Iterable[str | os.PathLike]) -> list[str]:
        """Python files under ``paths`` (files kept as-is, directories
        walked recursively), repo-relative, sorted, ``__pycache__``
        skipped."""
        found: set[str] = set()
        for path in paths:
            path = os.path.join(self.root, os.fspath(path))
            if os.path.isfile(path):
                found.add(self._relpath(path))
                continue
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in filenames:
                    if name.endswith(".py"):
                        found.add(self._relpath(os.path.join(dirpath, name)))
        return sorted(found)

    def _relpath(self, path: str) -> str:
        rel = os.path.relpath(path, self.root)
        return rel.replace(os.sep, "/")

    # -- checking ------------------------------------------------------------

    def check_source(self, rel_path: str, source: str
                     ) -> tuple[list[Finding], int]:
        """``(findings, suppressed_count)`` for one in-memory file."""
        try:
            ctx = FileContext.parse(rel_path, source)
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            return [Finding(rule=PARSE_ERROR_RULE, path=rel_path,
                            line=line, col=1,
                            message=f"file does not parse: {exc.msg}"
                            if isinstance(exc, SyntaxError)
                            else f"file does not parse: {exc}")], 0
        per_line, per_file = _parse_suppressions(source)
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(rel_path):
                started = time.perf_counter()
                raw.extend(rule.check(ctx))
                self._rule_seconds[rule.id] = (
                    self._rule_seconds.get(rule.id, 0.0)
                    + time.perf_counter() - started)
        findings: list[Finding] = []
        suppressed = 0
        for f in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
            disabled = per_line.get(f.line, set())
            if (f.rule in per_file or "ALL" in per_file
                    or f.rule in disabled or "ALL" in disabled):
                suppressed += 1
            else:
                findings.append(f)
        return findings, suppressed

    def run(self, paths: Iterable[str | os.PathLike],
            *, read: Callable[[str], str] | None = None) -> LintReport:
        """Lint every file under ``paths`` against the baseline."""
        report = LintReport(rules=[r.id for r in self.rules])
        self._rule_seconds = {}
        collected: list[Finding] = []
        for rel in self.discover(paths):
            if read is not None:
                source = read(rel)
            else:
                with open(os.path.join(self.root, rel),
                          encoding="utf-8") as f:
                    source = f.read()
            findings, suppressed = self.check_source(rel, source)
            collected.extend(findings)
            report.suppressed += suppressed
            report.files_checked += 1
        report.findings, report.baselined = self.baseline.split(collected)
        report.stale_baseline = self.baseline.stale_keys(collected)
        report.rule_seconds = dict(self._rule_seconds)
        return report
