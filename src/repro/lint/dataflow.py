"""A small forward dataflow framework over :mod:`repro.lint.cfg`.

A rule supplies the lattice: an initial state at the function entry, a
``transfer`` function per node, and a ``merge`` at join points.
:func:`run_forward` iterates a worklist to a fixpoint and returns the
state *before* and *after* every node.  Loops converge because rule
lattices are finite (small tuples and enums per tracked name); a step
cap turns a non-converging lattice into a loud
:class:`DataflowDivergence` instead of a hung lint run.

Edge semantics (see :mod:`repro.lint.cfg`): a normal edge propagates
the source node's out-state; an *exceptional* edge propagates the
in-state — the exception escaped mid-statement, so the statement's
effects are treated as not applied.  A rule for which some effects
survive an exception (closing a file handle does, even when
``close()`` itself raises) passes ``exc_transfer`` to apply exactly
those effects on exceptional edges.

States must be treated as immutable: ``transfer`` returns a fresh
state (or its input unchanged), never mutates in place.  States are
compared with ``==`` unless ``equals`` is given.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping, TypeVar

from .cfg import CFG, CFGNode

__all__ = ["DataflowDivergence", "Solution", "merge_dicts", "run_forward"]

State = Any
V = TypeVar("V")


class DataflowDivergence(RuntimeError):
    """The fixpoint iteration exceeded its step cap — the rule's
    lattice is not finite-height (or merge is not monotone)."""


@dataclass
class Solution:
    """Fixpoint states; ``None`` marks a node dataflow never reached
    (unreachable code) — rules must skip those."""

    before: dict[int, State | None]
    after: dict[int, State | None]


def run_forward(
    cfg: CFG,
    *,
    init: State,
    transfer: Callable[[CFGNode, State], State],
    merge: Callable[[State, State], State],
    equals: Callable[[State, State], bool] | None = None,
    exc_transfer: Callable[[CFGNode, State], State] | None = None,
    max_steps: int | None = None,
) -> Solution:
    """Iterate ``transfer`` over ``cfg`` to a forward fixpoint."""
    eq = equals if equals is not None else lambda a, b: a == b
    cap = max_steps if max_steps is not None else 32 * len(cfg.nodes) + 1024

    before: dict[int, State | None] = {n.id: None for n in cfg.nodes}
    after: dict[int, State | None] = {n.id: None for n in cfg.nodes}
    before[cfg.entry] = init

    queue: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    steps = 0
    while queue:
        steps += 1
        if steps > cap:
            raise DataflowDivergence(
                f"dataflow did not converge within {cap} steps in "
                f"{cfg.func.name!r}")
        node_id = queue.popleft()
        queued.discard(node_id)
        node = cfg.nodes[node_id]
        state_in = before[node_id]
        assert state_in is not None
        state_out = transfer(node, state_in)
        after[node_id] = state_out
        for edge in node.edges:
            if edge.exceptional:
                contrib = (exc_transfer(node, state_in)
                           if exc_transfer is not None else state_in)
            else:
                contrib = state_out
            old = before[edge.dst]
            new = contrib if old is None else merge(old, contrib)
            if old is None or not eq(new, old):
                before[edge.dst] = new
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    queue.append(edge.dst)
    return Solution(before, after)


def merge_dicts(a: Mapping[str, V], b: Mapping[str, V],
                join: Callable[[V, V], V], default: V) -> dict[str, V]:
    """Pointwise merge of two per-name state maps over the union of
    their keys; a name absent from one side contributes ``default``."""
    out: dict[str, V] = {}
    for key in a.keys() | b.keys():
        out[key] = join(a.get(key, default), b.get(key, default))
    return out
