"""Per-function control-flow graphs for flow-sensitive lint rules.

The syntactic rules (RL001–RL007) walk the AST node by node; the
protocol rules (RL008–RL011) need *orderings* — "was fsync reached
before the rename on every path", "is there an await between this read
and that write", "is the store closed on the exception path too".
:func:`build_cfg` turns one ``def``/``async def`` into a graph precise
enough to answer those questions and nothing more:

* one node per simple statement; compound statements contribute a
  *header* node (the ``if``/``while`` test, the ``for`` iterable, the
  ``with`` context expressions) plus the nodes of their blocks;
* explicit ``entry``, ``exit`` (normal returns / fall-through) and
  ``raise-exit`` (escaping exceptions) nodes;
* exception edges from every statement that can raise to the innermost
  enclosing handler entries / ``finally`` / ``raise-exit``.  An
  exceptional edge means "the exception escaped *mid-statement*":
  dataflow propagates the statement's **in**-state along it, so a
  half-executed acquisition is treated as not having happened;
* ``with`` blocks get dedicated ``with-exit`` nodes on both the normal
  and the exceptional path, so a rule can model ``__exit__`` effects
  (closing a store) exactly once per path.  Context-manager exits are
  modelled as non-raising: an edge *out of* a ``with-exit`` node —
  even one leading to a handler — is a normal edge carrying the
  out-state, because ``__exit__`` ran to completion before the
  original exception continued outward;
* ``finally`` bodies are duplicated per path (normal completion,
  escaping exception, and once per ``return``/``break``/``continue``
  that jumps across them), mirroring how CPython compiles them.  The
  duplication keeps states on distinct paths from merging inside the
  ``finally`` — the whole point of flow sensitivity;
* each node records the stack of ``with`` regions it executes under
  (:class:`WithRegion`), which is how the lock-discipline rule decides
  whether a statement runs inside ``with self._lock:``.

Nodes never reached by dataflow (code after ``raise``, say) keep a
``None`` in-state; rules must skip them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CFG",
    "CFGNode",
    "Edge",
    "WithRegion",
    "build_cfg",
    "calls_in",
    "functions",
    "header_exprs",
    "stmt_awaits",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_TRY_NODES: tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # 3.11+
    _TRY_NODES = (ast.Try, ast.TryStar)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)

#: Statements that cannot raise; everything else gets exception edges.
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass(frozen=True)
class WithRegion:
    """One ``with``/``async with`` a node executes under."""

    node: int                       #: id of the ``with`` header node
    is_async: bool
    context_names: tuple[str, ...]  #: unparse of each context expression


@dataclass(frozen=True)
class Edge:
    dst: int
    #: True when this edge models an exception escaping mid-statement.
    #: Dataflow propagates the source's *in*-state along it (or the
    #: rule's ``exc_transfer`` of the in-state).
    exceptional: bool = False


@dataclass
class CFGNode:
    id: int
    #: "entry" | "exit" | "raise-exit" | "stmt" | "with-exit" |
    #: "except" | "finally-entry"
    kind: str
    stmt: ast.stmt | None
    with_stack: tuple[WithRegion, ...] = ()
    edges: list[Edge] = field(default_factory=list)


@dataclass
class CFG:
    func: FunctionNode
    nodes: list[CFGNode]
    entry: int
    exit: int
    raise_exit: int

    def node(self, node_id: int) -> CFGNode:
        """The node with id ``node_id`` (ids index ``nodes``)."""
        return self.nodes[node_id]


# --------------------------------------------------------------------------
# builder internals


@dataclass(frozen=True)
class _WithCleanup:
    """A ``with`` region a jump must exit through."""

    stmt: ast.stmt
    outer_with: tuple[WithRegion, ...]


@dataclass(frozen=True)
class _FinallyCleanup:
    """A ``finally`` body a jump must execute a fresh copy of."""

    finalbody: tuple[ast.stmt, ...]
    env: "_Env"  # environment *outside* the try


@dataclass
class _LoopCtx:
    header: int
    cleanup_depth: int
    breaks: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class _Env:
    """Immutable build context for one block."""

    exc: tuple[int, ...]                 # exception edge targets
    with_stack: tuple[WithRegion, ...]
    cleanups: tuple[_WithCleanup | _FinallyCleanup, ...]
    loop: _LoopCtx | None


class _Builder:
    def __init__(self, func: FunctionNode):
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry", None, ())
        self.exit = self._new("exit", None, ())
        self.raise_exit = self._new("raise-exit", None, ())

    # -- node/edge plumbing ------------------------------------------------

    def _new(self, kind: str, stmt: ast.stmt | None,
             with_stack: tuple[WithRegion, ...]) -> int:
        node = CFGNode(len(self.nodes), kind, stmt, with_stack)
        self.nodes.append(node)
        return node.id

    def _connect(self, preds: list[int], dst: int, *,
                 exceptional: bool = False) -> None:
        for pred in preds:
            self.nodes[pred].edges.append(Edge(dst, exceptional))

    def _stmt_node(self, stmt: ast.stmt, env: _Env,
                   preds: list[int]) -> int:
        node = self._new("stmt", stmt, env.with_stack)
        self._connect(preds, node)
        if not isinstance(stmt, _NO_RAISE):
            for target in env.exc:
                self.nodes[node].edges.append(Edge(target, True))
        return node

    # -- cleanup routing for return/break/continue -------------------------

    def _run_cleanups(self, preds: list[int], env: _Env,
                      down_to: int) -> list[int]:
        """Emit the cleanup chain a jump crosses, innermost first."""
        for frame in reversed(env.cleanups[down_to:]):
            if isinstance(frame, _WithCleanup):
                wexit = self._new("with-exit", frame.stmt, frame.outer_with)
                self._connect(preds, wexit)
                preds = [wexit]
            else:
                preds = self._block(list(frame.finalbody), preds, frame.env)
        return preds

    # -- statement dispatch ------------------------------------------------

    def _block(self, stmts: list[ast.stmt], preds: list[int],
               env: _Env) -> list[int]:
        for stmt in stmts:
            preds = self._statement(stmt, preds, env)
        return preds

    def _statement(self, stmt: ast.stmt, preds: list[int],
                   env: _Env) -> list[int]:
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt, env, preds)
            tail = self._run_cleanups([node], env, 0)
            self._connect(tail, self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            self._stmt_node(stmt, env, preds)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self._stmt_node(stmt, env, preds)
            loop = env.loop
            if loop is None:      # syntactically impossible in valid code
                return []
            tail = self._run_cleanups([node], env, loop.cleanup_depth)
            if isinstance(stmt, ast.Break):
                loop.breaks.extend(tail)
            else:
                self._connect(tail, loop.header)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, env)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, env)
        if isinstance(stmt, _TRY_NODES):
            return self._try(stmt, preds, env)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds, env)
        # simple statement (incl. nested def/class, which bind a name)
        return [self._stmt_node(stmt, env, preds)]

    def _if(self, stmt: ast.If, preds: list[int], env: _Env) -> list[int]:
        header = self._stmt_node(stmt, env, preds)
        out = self._block(stmt.body, [header], env)
        if stmt.orelse:
            out += self._block(stmt.orelse, [header], env)
        else:
            out += [header]
        return out

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              preds: list[int], env: _Env) -> list[int]:
        header = self._stmt_node(stmt, env, preds)
        loop = _LoopCtx(header, cleanup_depth=len(env.cleanups))
        body_env = _Env(env.exc, env.with_stack, env.cleanups, loop)
        body_out = self._block(stmt.body, [header], body_env)
        self._connect(body_out, header)        # back edge
        exits: list[int] = []
        if not (isinstance(stmt, ast.While) and _always_true(stmt.test)):
            exits.append(header)               # condition false / exhausted
        if stmt.orelse:
            exits = self._block(stmt.orelse, exits, env)
        return exits + loop.breaks

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: list[int],
              env: _Env) -> list[int]:
        header = self._stmt_node(stmt, env, preds)
        region = WithRegion(
            node=header,
            is_async=isinstance(stmt, ast.AsyncWith),
            context_names=tuple(ast.unparse(item.context_expr)
                                for item in stmt.items),
        )
        # The exceptional exit exists before the body is built so body
        # exceptions route through __exit__.  Header exceptions (the
        # context expression or __enter__ raising) bypass it: they use
        # env.exc via _stmt_node above.
        wexc = self._new("with-exit", stmt, env.with_stack)
        for target in env.exc:
            # Normal edge: __exit__ completed, then the exception
            # continued outward — carry the out-state.
            self.nodes[wexc].edges.append(Edge(target, False))
        body_env = _Env(
            exc=(wexc,),
            with_stack=env.with_stack + (region,),
            cleanups=env.cleanups + (
                _WithCleanup(stmt, env.with_stack),),
            loop=env.loop,
        )
        body_out = self._block(stmt.body, [header], body_env)
        wnorm = self._new("with-exit", stmt, env.with_stack)
        self._connect(body_out, wnorm)
        return [wnorm]

    def _try(self, stmt: ast.Try, preds: list[int],
             env: _Env) -> list[int]:
        finalbody = tuple(stmt.finalbody)
        if finalbody:
            # Exception path: a synthetic anchor, then a fresh copy of
            # the finally body, then onward to the outer targets (the
            # exception resumes after the finally completes — normal
            # edges carrying the out-state).
            fexc = self._new("finally-entry", stmt, env.with_stack)
            fexc_out = self._block(list(finalbody), [fexc], env)
            for target in env.exc:
                self._connect(fexc_out, target)
            escape: tuple[int, ...] = (fexc,)
            inner_cleanups = env.cleanups + (
                _FinallyCleanup(finalbody, env),)
        else:
            escape = env.exc
            inner_cleanups = env.cleanups

        handler_entries = []
        for handler in stmt.handlers:
            entry = self._new("except", handler, env.with_stack)
            handler_entries.append(entry)

        body_env = _Env(tuple(handler_entries) + escape,
                        env.with_stack, inner_cleanups, env.loop)
        body_out = self._block(stmt.body, preds, body_env)

        # else and handler bodies are not protected by this try's
        # handlers; their exceptions go through the finally (or out).
        rest_env = _Env(escape, env.with_stack, inner_cleanups, env.loop)
        if stmt.orelse:
            body_out = self._block(stmt.orelse, body_out, rest_env)
        normal_out = list(body_out)
        for handler, entry in zip(stmt.handlers, handler_entries):
            normal_out += self._block(handler.body, [entry], rest_env)

        if finalbody:
            return self._block(list(finalbody), normal_out, env)
        return normal_out

    def _match(self, stmt: ast.Match, preds: list[int],
               env: _Env) -> list[int]:
        header = self._stmt_node(stmt, env, preds)
        out = [header]              # conservatively: no case may match
        for case in stmt.cases:
            out += self._block(case.body, [header], env)
        return out

    # -- entry point -------------------------------------------------------

    def build(self) -> CFG:
        env = _Env(exc=(self.raise_exit,), with_stack=(),
                   cleanups=(), loop=None)
        out = self._block(self.func.body, [self.entry], env)
        self._connect(out, self.exit)          # implicit return None
        return CFG(self.func, self.nodes, self.entry, self.exit,
                   self.raise_exit)


def _always_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of one function body."""
    return _Builder(func).build()


# --------------------------------------------------------------------------
# statement-level helpers shared by the flow-sensitive rules


def header_exprs(stmt: ast.AST) -> list[ast.expr]:
    """The expressions a statement's CFG node actually evaluates.

    For compound statements that is the header only (the ``if`` test,
    the ``for`` iterable and target, the ``with`` items); the block
    bodies belong to their own nodes.  Nested function/class
    definitions evaluate nothing at the definition site beyond
    defaults/decorators, which no current rule models — they are
    opaque.
    """
    if isinstance(stmt, _SCOPE_NODES):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.expr] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, _TRY_NODES):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def _walk_expr_postorder(expr: ast.AST) -> Iterator[ast.AST]:
    if isinstance(expr, _SCOPE_NODES):
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, _SCOPE_NODES):
            continue
        yield from _walk_expr_postorder(child)
    yield expr


def walk_exprs(stmt: ast.AST) -> Iterator[ast.AST]:
    """Post-order walk (≈ evaluation order) of a node's header
    expressions, skipping nested scopes."""
    for expr in header_exprs(stmt):
        yield from _walk_expr_postorder(expr)


def calls_in(stmt: ast.AST) -> list[ast.Call]:
    """Calls a statement's node evaluates, in ≈ evaluation order."""
    return [node for node in walk_exprs(stmt)
            if isinstance(node, ast.Call)]


def stmt_awaits(stmt: ast.AST) -> bool:
    """True when executing this statement's node suspends the
    coroutine (an ``await`` expression, or an ``async for`` /
    ``async with`` header's implicit awaits)."""
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        return True
    return any(isinstance(node, ast.Await) for node in walk_exprs(stmt))


def functions(tree: ast.AST) -> Iterator[tuple[str, FunctionNode]]:
    """Yield ``(qualname, func)`` for every function in a module,
    outermost first."""
    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator[
            tuple[str, FunctionNode]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(stack + (child.name,))
                yield qualname, child
                yield from visit(child, stack + (child.name, "<locals>"))
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + (child.name,))
            else:
                yield from visit(child, stack)
    yield from visit(tree, ())
