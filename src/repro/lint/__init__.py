"""``repro.lint`` — static enforcement of the repo's invariant contracts.

``python -m repro lint`` walks the ASTs of everything under ``src/``
and fails on violations of the determinism, durability, counter-purity,
exception-discipline, async-safety and picklability contracts the
earlier PRs established dynamically.  See ``docs/static-analysis.md``
for the rules and :mod:`repro.lint.engine` for the machinery.

>>> from repro.lint import LintEngine, Baseline
>>> report = LintEngine(root=".").run(["src"])      # doctest: +SKIP
>>> report.clean                                     # doctest: +SKIP
True
"""

from __future__ import annotations

import os

from .engine import (
    BASELINE_FORMAT,
    Baseline,
    FileContext,
    Finding,
    LintEngine,
    LintReport,
    Rule,
    all_rules,
    register,
)

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE",
    "Baseline",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
]

#: The committed baseline the CLI applies by default (kept empty for
#: ``src/`` — fix findings, don't baseline them).
DEFAULT_BASELINE = "lint-baseline.json"


def lint_paths(paths: list[str], *, root: str | os.PathLike = ".",
               baseline_path: str | None = None) -> LintReport:
    """Lint ``paths`` (relative to ``root``) with every registered rule.

    ``baseline_path=None`` auto-loads ``<root>/lint-baseline.json`` when
    present; pass ``""`` to force an empty baseline.
    """
    root = os.fspath(root)
    if baseline_path is None:
        candidate = os.path.join(root, DEFAULT_BASELINE)
        baseline_path = candidate if os.path.exists(candidate) else ""
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    engine = LintEngine(root=root, baseline=baseline)
    return engine.run(paths)
