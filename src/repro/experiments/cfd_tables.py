"""CFD experiments: Tables 9-10, Figure 12, and the Figure 5-6 plots.

Section 4.4 restricts CFD queries to the box (0.48, 0.48)-(0.6, 0.6) —
the dense region around the wing — because the far field is so sparse that
unrestricted queries have huge variance.  Point queries and region-query
lower-left corners are uniform in that window; region queries add exactly
0.01 or 0.03 to the corner ("query region area = 0.0001 / 0.0009" in
Table 9) and truncate at 0.6.
"""

from __future__ import annotations

from ..datasets.cfd import (
    CFD_QUERY_WINDOW,
    CFD_SMALL_NODE_COUNT,
    airfoil_points,
    airfoil_like,
)
from ..queries.workloads import point_queries, region_queries
from ..viz.svg import scatter_svg
from .config import DEFAULT_CONFIG, ExperimentConfig
from .realdata import buffer_sweep_table, quality_table
from .report import Series, Table
from .runner import TreeCache

__all__ = [
    "cfd_cache",
    "DATASET_LABEL",
    "TABLE9_BUFFERS",
    "FIGURE12_BUFFERS",
    "table9",
    "table10",
    "figure12",
    "figures_5_6",
]

DATASET_LABEL = "cfd-airfoil"

#: Buffer sizes in Table 9 (paper lists them largest-first).
TABLE9_BUFFERS = (250, 100, 50, 25, 20, 15, 10)

#: Buffer sweep of Figure 12.
FIGURE12_BUFFERS = (10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100)

#: Exact region-query sides of Section 4.4.
REGION_SIDES = (0.01, 0.03)


def cfd_cache(config: ExperimentConfig = DEFAULT_CONFIG) -> TreeCache:
    """Tree cache holding the CFD-like dataset."""
    cache = TreeCache(capacity=config.capacity)
    cache.add_dataset(
        DATASET_LABEL,
        airfoil_like(config.cfd_count,
                     seed=config.dataset_seed(DATASET_LABEL)),
    )
    return cache


def _sections(config: ExperimentConfig):
    def make_point():
        return point_queries(
            config.query_count, seed=config.workload_seed("cfd-point"),
            window=CFD_QUERY_WINDOW,
        )

    def make_region(side: float):
        return lambda: region_queries(
            side, config.query_count,
            seed=config.workload_seed(f"cfd-region-{side}"),
            window=CFD_QUERY_WINDOW,
            kind=f"region area={side * side:g}",
        )

    return (
        ("Point Queries", make_point),
        ("Region Queries, Query Region Area = 0.0001",
         make_region(REGION_SIDES[0])),
        ("Region Queries, Query Region Area = 0.0009",
         make_region(REGION_SIDES[1])),
    )


def table9(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 9: disk accesses on CFD data across buffer sizes."""
    cache = cache if cache is not None else cfd_cache(config)
    table = buffer_sweep_table(
        cache, DATASET_LABEL, TABLE9_BUFFERS, _sections(config),
        title=(f"Table 9: Number of Disk Accesses, CFD {config.cfd_count} "
               "Node Data, Buffer Size Varied for Point and Region Queries"),
    )
    table.notes.append(
        "queries restricted to the (0.48,0.48)-(0.6,0.6) window "
        "(paper Section 4.4); synthetic airfoil stand-in (DESIGN.md)"
    )
    return table


def table10(config: ExperimentConfig = DEFAULT_CONFIG,
            cache: TreeCache | None = None) -> Table:
    """Table 10: CFD areas and perimeters."""
    cache = cache if cache is not None else cfd_cache(config)
    return quality_table(
        cache, DATASET_LABEL,
        title=(f"Table 10: CFD {config.cfd_count} Node Data Set, "
               "Areas and Perimeters"),
    )


def figure12(config: ExperimentConfig = DEFAULT_CONFIG,
             cache: TreeCache | None = None,
             buffers: tuple[int, ...] = FIGURE12_BUFFERS) -> list[Series]:
    """Figure 12: point-query accesses vs buffer size, STR vs HS."""
    cache = cache if cache is not None else cfd_cache(config)
    workload = point_queries(
        config.query_count, seed=config.workload_seed("cfd-point"),
        window=CFD_QUERY_WINDOW,
    )
    hs = Series(label="HS")
    strs = Series(label="STR")
    for buffer_pages in buffers:
        hs.add(buffer_pages,
               cache.run(DATASET_LABEL, "HS", workload, buffer_pages
                         ).mean_accesses)
        strs.add(buffer_pages,
                 cache.run(DATASET_LABEL, "STR", workload, buffer_pages
                           ).mean_accesses)
    return [hs, strs]


def figures_5_6(seed: int = 0) -> dict[str, str]:
    """Figures 5-6: the small CFD mesh, full view and center zoom (SVG)."""
    points = airfoil_points(CFD_SMALL_NODE_COUNT, seed=seed)
    full = scatter_svg(
        points, title=f"Full Data for {CFD_SMALL_NODE_COUNT} Node Data Set"
    )
    window = (0.48, 0.48, 0.6, 0.6)
    mask = (
        (points[:, 0] >= window[0]) & (points[:, 0] <= window[2])
        & (points[:, 1] >= window[1]) & (points[:, 1] <= window[3])
    )
    zoom = scatter_svg(
        points[mask],
        title=f"Data Around Center for {CFD_SMALL_NODE_COUNT} Node Data Set",
        bounds=window,
    )
    return {"figure5_full": full, "figure6_zoom": zoom}
