"""Shared machinery for the real-data experiments (Tables 5-10).

The GIS, VLSI and CFD experiments all have the same two shapes:

* a **buffer sweep**: mean disk accesses per query for STR/HS/NX and the
  HS/STR, NX/STR ratios, with one row per buffer size and one section per
  query type;
* a **quality table**: leaf/total area and perimeter for each algorithm.

The dataset-specific modules supply the data, the buffer list, and the
query-window specifics; this module renders the paper-layout tables.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..queries.workloads import QueryWorkload
from .report import Table
from .runner import TreeCache

__all__ = ["buffer_sweep_table", "quality_table"]

_ALGOS = ("STR", "HS", "NX")


def buffer_sweep_table(
    cache: TreeCache,
    dataset_label: str,
    buffers: Sequence[int],
    sections: Sequence[tuple[str, Callable[[], QueryWorkload]]],
    title: str,
) -> Table:
    """Disk accesses vs buffer size, one section per query type.

    ``sections`` pairs a section heading with a zero-argument workload
    factory (factories defer RNG work until the section actually runs).
    """
    table = Table(
        title=title,
        columns=("Buffer Size", "STR", "HS", "NX", "HS/STR", "NX/STR"),
    )
    for heading, make_workload in sections:
        table.add_section(heading)
        workload = make_workload()
        for buffer_pages in buffers:
            means = [
                cache.run(dataset_label, algo, workload, buffer_pages
                          ).mean_accesses
                for algo in _ALGOS
            ]
            str_mean = means[0] if means[0] > 0 else float("nan")
            table.add_row(
                buffer_pages, *means,
                means[1] / str_mean, means[2] / str_mean,
            )
    return table


def quality_table(cache: TreeCache, dataset_label: str, title: str) -> Table:
    """Leaf/total area and perimeter per algorithm (Tables 6, 8, 10)."""
    table = Table(title=title, columns=("metric", "STR", "HS", "NX"))
    qualities = {
        algo: cache.quality(dataset_label, algo) for algo in _ALGOS
    }
    for metric in ("leaf area", "total area",
                   "leaf perimeter", "total perimeter"):
        table.add_row(
            metric, *(qualities[a].as_row()[metric] for a in _ALGOS)
        )
    return table
