"""Tabular reporting in the paper's layout.

Every experiment module produces a :class:`Table`: a titled grid of rows
with named columns, renderable as aligned text (what the benchmarks print)
or CSV (for EXPERIMENTS.md bookkeeping and downstream plotting).  Numbers
are formatted to two decimals like the paper's tables; ratio columns get
the paper's ``HS/STR`` style headers.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..obs.spans import PHASES, Tracer

__all__ = ["Table", "Series", "format_value", "timing_breakdown_table"]


def format_value(value: Any, decimals: int = 2) -> str:
    """Paper-style cell formatting: floats to ``decimals``, rest as str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


@dataclass
class Table:
    """A titled result grid mirroring one of the paper's tables."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    #: Free-form provenance notes (paper values, substitutions, scale).
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one data row (arity must match the columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_section(self, label: str) -> None:
        """A full-width separator row, like the paper's query-type bands."""
        self.rows.append((label,) + ("",) * (len(self.columns) - 1))

    def column(self, name: str) -> list[Any]:
        """All values of one column (section separators excluded)."""
        idx = list(self.columns).index(name)
        return [
            row[idx] for row in self.rows
            if not self._is_section(row)
        ]

    def cell(self, row_index: int, name: str) -> Any:
        """One cell by data-row index and column name."""
        data_rows = [r for r in self.rows if not self._is_section(r)]
        return data_rows[row_index][list(self.columns).index(name)]

    def data_rows(self) -> list[Sequence[Any]]:
        """All rows except section separators."""
        return [r for r in self.rows if not self._is_section(r)]

    @staticmethod
    def _is_section(row: Sequence[Any]) -> bool:
        return len(row) > 1 and all(v == "" for v in row[1:])

    # -- rendering ----------------------------------------------------------

    def render(self, decimals: int = 2) -> str:
        """Aligned plain-text rendering."""
        header = [str(c) for c in self.columns]
        body = [
            [format_value(v, decimals) for v in row] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        out = io.StringIO()
        out.write(self.title + "\n")
        out.write("=" * len(self.title) + "\n")
        out.write(
            "  ".join(h.rjust(w) for h, w in zip(header, widths)) + "\n"
        )
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row, cells in zip(self.rows, body):
            if self._is_section(row):
                out.write(f"-- {row[0]} --\n")
            else:
                out.write(
                    "  ".join(c.rjust(w) for c, w in zip(cells, widths))
                    + "\n"
                )
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering (sections become single-cell rows)."""
        out = io.StringIO()
        out.write(",".join(str(c) for c in self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(format_value(v, 6) for v in row) + "\n")
        return out.getvalue()

    def __str__(self) -> str:
        return self.render()


def timing_breakdown_table(tracer: Tracer,
                           title: str = "Phase timing breakdown") -> Table:
    """Render a tracer's timings the way ``repro profile`` prints them.

    Two bands: the coarse phases (sort/tile/pack/query, *self* time, so
    the percentages sum to 100) and the per-span-name totals (inclusive
    wall time — nested spans count their children, so these do not sum).
    """
    table = Table(
        title=title,
        columns=("phase / span", "count", "wall s", "cpu s", "% wall"),
    )
    phases = tracer.phase_summary()
    total_wall = sum(p["wall_s"] for p in phases.values())
    table.add_section("phases (self time)")
    ordered = [p for p in PHASES if p in phases]
    ordered += sorted(set(phases) - set(ordered))
    for phase in ordered:
        p = phases[phase]
        pct = 100.0 * p["wall_s"] / total_wall if total_wall else 0.0
        table.add_row(phase, int(p["count"]),
                      round(p["wall_s"], 4), round(p["cpu_s"], 4),
                      f"{pct:.1f}%")
    table.add_section("spans (inclusive time)")
    spans = tracer.summary()
    for name in sorted(spans, key=lambda n: -spans[n]["wall_s"]):
        s = spans[name]
        pct = 100.0 * s["wall_s"] / total_wall if total_wall else 0.0
        table.add_row(f"{name} [{s['phase']}]", int(s["count"]),
                      round(s["wall_s"], 4), round(s["cpu_s"], 4),
                      f"{pct:.1f}%")
    table.notes.append(
        f"traced wall time {total_wall:.3f}s over {len(tracer)} spans; "
        "phase rows use self time (exclusive of children) and sum to 100%"
    )
    return table


@dataclass
class Series:
    """One line of one of the paper's figures: (x, y) pairs plus a label."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) sample."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def as_table_rows(self) -> Iterable[tuple[str, float, float]]:
        """Yield (label, x, y) triples for tabular rendering."""
        for x, y in zip(self.xs, self.ys):
            yield (self.label, x, y)
