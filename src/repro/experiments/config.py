"""Experiment configuration shared by all table/figure modules.

The default profile reproduces the paper's protocol exactly: 2,000 queries
per cell, synthetic sizes 10k-300k, node capacity 100, the documented
dataset sizes for TIGER/VLSI/CFD stand-ins (VLSI scaled to 100k by default,
see DESIGN.md).  :meth:`ExperimentConfig.quick` gives a profile small
enough for CI and iterative runs — same shapes, fewer/smaller cells.

All randomness is seeded: dataset seeds and workload seeds are derived from
``seed`` so two runs with the same config are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..datasets.cfd import CFD_NODE_COUNT
from ..datasets.gis import LONG_BEACH_SEGMENT_COUNT
from ..datasets.synthetic import PAPER_SIZES

__all__ = ["ExperimentConfig", "DEFAULT_CONFIG", "QUICK_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for the reproduction experiments."""

    #: Queries per experiment cell (paper: 2,000).
    query_count: int = 2_000
    #: Synthetic data sizes (paper: 10k, 25k, 50k, 100k, 300k).
    sizes: tuple[int, ...] = PAPER_SIZES
    #: Synthetic densities shown in the paper's tables/figures.
    densities: tuple[float, float] = (0.0, 5.0)
    #: TIGER-like segment count (paper: 53,145).
    tiger_count: int = LONG_BEACH_SEGMENT_COUNT
    #: VLSI-like rectangle count (paper: 453,994; default scaled — DESIGN.md).
    vlsi_count: int = 100_000
    #: CFD-like node count (paper: 52,510).
    cfd_count: int = CFD_NODE_COUNT
    #: Node capacity, the paper's ``n``.
    capacity: int = 100
    #: Master seed; dataset/workload seeds derive from it.
    seed: int = 0

    def dataset_seed(self, label: str) -> int:
        """Stable per-dataset seed derived from the master seed."""
        return self.seed * 1_000_003 + sum(ord(c) for c in label)

    def workload_seed(self, label: str) -> int:
        """Stable per-workload seed, distinct from dataset seeds."""
        return self.seed * 7_000_003 + 13 * sum(ord(c) for c in label) + 1

    def scaled(self, **changes) -> "ExperimentConfig":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A fast profile for tests/CI: same shapes, much smaller cells."""
        return cls(
            query_count=300,
            sizes=(10_000, 25_000),
            tiger_count=20_000,
            vlsi_count=20_000,
            cfd_count=20_000,
        )


DEFAULT_CONFIG = ExperimentConfig()
QUICK_CONFIG = ExperimentConfig.quick()
