"""VLSI experiments: Tables 7-8 and Figure 11.

Table 7   — disk accesses vs buffer (10-500), point / 1% / 9% queries.
Table 8   — areas and perimeters.
Figure 11 — accesses vs buffer size for all three query types, STR vs HS.

The dataset is the highly-skewed :func:`repro.datasets.vlsi.vlsi_like`
stand-in; the paper's finding here is the interesting negative result —
HS edges out STR for point queries on this data.
"""

from __future__ import annotations

from ..datasets.vlsi import vlsi_like
from ..queries.workloads import workload_for
from .config import DEFAULT_CONFIG, ExperimentConfig
from .realdata import buffer_sweep_table, quality_table
from .report import Series, Table
from .runner import TreeCache

__all__ = [
    "vlsi_cache",
    "DATASET_LABEL",
    "TABLE7_BUFFERS",
    "table7",
    "table8",
    "figure11",
]

DATASET_LABEL = "vlsi-cif"

#: Buffer sizes in Table 7 / Figure 11.
TABLE7_BUFFERS = (10, 25, 50, 100, 250, 500)


def vlsi_cache(config: ExperimentConfig = DEFAULT_CONFIG) -> TreeCache:
    """Tree cache holding the VLSI-like dataset."""
    cache = TreeCache(capacity=config.capacity)
    cache.add_dataset(
        DATASET_LABEL,
        vlsi_like(config.vlsi_count,
                  seed=config.dataset_seed(DATASET_LABEL)),
    )
    return cache


def _sections(config: ExperimentConfig):
    def make(kind: str):
        return lambda: workload_for(
            kind, count=config.query_count,
            seed=config.workload_seed(f"vlsi-{kind}"),
        )

    return (
        ("Point Queries", make("point")),
        ("Region Queries, Query Region = 1% of Data", make("region1")),
        ("Region Queries, Query Region = 9% of Data", make("region9")),
    )


def table7(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 7: disk accesses on VLSI data across buffer sizes."""
    cache = cache if cache is not None else vlsi_cache(config)
    table = buffer_sweep_table(
        cache, DATASET_LABEL, TABLE7_BUFFERS, _sections(config),
        title=("Table 7: Number of Disk Accesses, VLSI Data, "
               "Buffer Size Varied for Point and Region Queries"),
    )
    table.notes.append(
        f"synthetic VLSI stand-in, {config.vlsi_count} rectangles "
        "(paper: 453,994; see DESIGN.md section 3)"
    )
    return table


def table8(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 8: VLSI areas and perimeters."""
    cache = cache if cache is not None else vlsi_cache(config)
    return quality_table(
        cache, DATASET_LABEL,
        title="Table 8: VLSI Data, Areas and Perimeters",
    )


def figure11(config: ExperimentConfig = DEFAULT_CONFIG,
             cache: TreeCache | None = None,
             buffers: tuple[int, ...] = TABLE7_BUFFERS) -> list[Series]:
    """Figure 11: accesses vs buffer for point/1%/9% queries, STR vs HS."""
    cache = cache if cache is not None else vlsi_cache(config)
    series: list[Series] = []
    for kind, label in (("region9", "9%"), ("region1", "1%"),
                        ("point", "Point")):
        workload = workload_for(
            kind, count=config.query_count,
            seed=config.workload_seed(f"vlsi-{kind}"),
        )
        for algo in ("HS", "STR"):
            line = Series(label=f"{algo} {label}")
            for buffer_pages in buffers:
                line.add(
                    buffer_pages,
                    cache.run(DATASET_LABEL, algo, workload, buffer_pages
                              ).mean_accesses,
                )
            series.append(line)
    return series
