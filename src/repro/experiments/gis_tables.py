"""GIS (Long Beach TIGER-like) experiments: Tables 5-6, Figures 2-4 and 10.

Table 5   — disk accesses vs buffer size (10-250) for point / 1% / 9%
            region queries.
Table 6   — areas and perimeters.
Figure 10 — point-query accesses vs buffer size, 10-500, STR vs HS.
Figures 2-4 — leaf-level MBR plots per algorithm (SVG via repro.viz).
"""

from __future__ import annotations

from ..datasets.gis import long_beach_like
from ..queries.workloads import workload_for
from ..viz.svg import leaf_mbr_svg
from .config import DEFAULT_CONFIG, ExperimentConfig
from .realdata import buffer_sweep_table, quality_table
from .report import Series, Table
from .runner import TreeCache

__all__ = [
    "gis_cache",
    "DATASET_LABEL",
    "TABLE5_BUFFERS",
    "FIGURE10_BUFFERS",
    "table5",
    "table6",
    "figure10",
    "figures_2_3_4",
]

DATASET_LABEL = "tiger-long-beach"

#: Buffer sizes in Table 5.
TABLE5_BUFFERS = (10, 25, 50, 100, 250)

#: Buffer sweep of Figure 10.
FIGURE10_BUFFERS = (10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500)


def gis_cache(config: ExperimentConfig = DEFAULT_CONFIG) -> TreeCache:
    """Tree cache holding the TIGER-like dataset."""
    cache = TreeCache(capacity=config.capacity)
    cache.add_dataset(
        DATASET_LABEL,
        long_beach_like(config.tiger_count,
                        seed=config.dataset_seed(DATASET_LABEL)),
    )
    return cache


def _sections(config: ExperimentConfig):
    def make(kind: str):
        return lambda: workload_for(
            kind, count=config.query_count,
            seed=config.workload_seed(f"gis-{kind}"),
        )

    return (
        ("Point Queries", make("point")),
        ("Region Queries, Query Region = 1% of Data", make("region1")),
        ("Region Queries, Query Region = 9% of Data", make("region9")),
    )


def table5(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 5: disk accesses on Long Beach data across buffer sizes."""
    cache = cache if cache is not None else gis_cache(config)
    table = buffer_sweep_table(
        cache, DATASET_LABEL, TABLE5_BUFFERS, _sections(config),
        title=("Table 5: Number of Disk Accesses, Long Beach Data, "
               "Point and Region Queries and Different Buffer Sizes"),
    )
    table.notes.append(
        f"synthetic TIGER stand-in, {config.tiger_count} segments "
        "(see DESIGN.md section 3)"
    )
    return table


def table6(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 6: Long Beach areas and perimeters."""
    cache = cache if cache is not None else gis_cache(config)
    return quality_table(
        cache, DATASET_LABEL,
        title="Table 6: Tiger Long Beach Data, Areas and Perimeters",
    )


def figure10(config: ExperimentConfig = DEFAULT_CONFIG,
             cache: TreeCache | None = None,
             buffers: tuple[int, ...] = FIGURE10_BUFFERS) -> list[Series]:
    """Figure 10: point-query accesses vs buffer size, STR vs HS."""
    cache = cache if cache is not None else gis_cache(config)
    workload = workload_for(
        "point", count=config.query_count,
        seed=config.workload_seed("gis-point"),
    )
    hs = Series(label="HS")
    strs = Series(label="STR")
    for buffer_pages in buffers:
        hs.add(buffer_pages,
               cache.run(DATASET_LABEL, "HS", workload, buffer_pages
                         ).mean_accesses)
        strs.add(buffer_pages,
                 cache.run(DATASET_LABEL, "STR", workload, buffer_pages
                           ).mean_accesses)
    return [hs, strs]


def figures_2_3_4(config: ExperimentConfig = DEFAULT_CONFIG,
                  cache: TreeCache | None = None) -> dict[str, str]:
    """Figures 2-4: leaf MBRs of the Long Beach tree per algorithm.

    Returns ``{algorithm: svg_text}`` — NX shows vertical strips, HS
    fractal clusters, STR the vertical-slice tiling, matching the paper's
    plots qualitatively.
    """
    cache = cache if cache is not None else gis_cache(config)
    return {
        algo: leaf_mbr_svg(cache.tree(DATASET_LABEL, algo),
                           title=f"Leaf MBRs, Long Beach-like data, {algo}")
        for algo in ("NX", "HS", "STR")
    }
