"""Experiment execution: build packed trees, replay query batches.

The paper's protocol, reproduced here verbatim:

1. Build an R-tree from the data set with the packing algorithm under
   test (node capacity 100; the same data for every algorithm).
2. Attach an LRU buffer of the experiment's size, starting **cold** (the
   reported numbers include the warm-up transient — the 25k/250-page rows
   of Table 3, where nearly the whole tree fits, only make sense this way).
3. Run 2,000 queries and report *mean disk accesses per query*.

:class:`TreeCache` keeps one built tree per (dataset, algorithm) pair so a
table that sweeps buffer sizes does not rebuild trees per row.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.geometry import RectArray
from ..core.packing.base import PackingAlgorithm
from ..core.packing.registry import make_algorithm
from ..obs import runtime as obs
from ..queries.workloads import QueryWorkload
from ..rtree.bulk import BulkLoadReport, bulk_load
from ..rtree.paged import PagedRTree
from ..rtree.stats import TreeQuality, measure_paged

__all__ = ["QueryRunResult", "TreeCache", "run_queries", "PAPER_CAPACITY"]

#: "All results are obtained from R-trees with 100 rectangles per node."
PAPER_CAPACITY = 100


@dataclass(frozen=True)
class QueryRunResult:
    """Outcome of one (tree, workload, buffer) experiment cell."""

    algorithm: str
    workload: str
    buffer_pages: int
    query_count: int
    total_accesses: int
    total_results: int

    @property
    def mean_accesses(self) -> float:
        """Disk accesses per query — the paper's reported number."""
        return self.total_accesses / self.query_count

    @property
    def mean_results(self) -> float:
        return self.total_results / self.query_count


def run_queries(tree: PagedRTree, workload: QueryWorkload,
                buffer_pages: int, *, policy: str = "lru",
                algorithm: str = "?") -> QueryRunResult:
    """Replay a workload through a cold buffer; mean accesses per query.

    With telemetry enabled (:mod:`repro.obs`), the batch is wrapped in a
    ``query.batch`` span and per-query latency/access histograms are
    observed.  Telemetry only *reads* the searcher's counters between
    queries — the buffer pool and access counts are untouched, so the
    reported ``mean_accesses`` is bit-identical either way.
    """
    searcher = tree.searcher(buffer_pages, policy=policy)
    total_results = 0
    telemetry = obs.enabled()
    with obs.span("query.batch", algorithm=algorithm, workload=workload.kind,
                  buffer_pages=buffer_pages, queries=len(workload)):
        if telemetry:
            previous = 0
            for query in workload:
                t0 = time.perf_counter()
                total_results += int(searcher.search(query).size)
                obs.observe("query.latency_s", time.perf_counter() - t0,
                            algorithm=algorithm, workload=workload.kind)
                accesses = searcher.disk_accesses
                obs.observe("query.accesses", accesses - previous,
                            algorithm=algorithm, workload=workload.kind)
                previous = accesses
        else:
            for query in workload:
                total_results += int(searcher.search(query).size)
    if telemetry:
        obs.record_iostats(searcher.stats, "query.io",
                           algorithm=algorithm, workload=workload.kind)
    return QueryRunResult(
        algorithm=algorithm,
        workload=workload.kind,
        buffer_pages=buffer_pages,
        query_count=len(workload),
        total_accesses=searcher.disk_accesses,
        total_results=total_results,
    )


class TreeCache:
    """Builds and memoises packed trees for one experiment's data sets.

    Keys are ``(dataset_label, algorithm_name)``; the cache also retains
    build reports and quality metrics so area/perimeter tables come for
    free once the disk-access tables have run.
    """

    def __init__(self, capacity: int = PAPER_CAPACITY):
        self.capacity = capacity
        self._trees: dict[tuple[str, str], PagedRTree] = {}
        self._reports: dict[tuple[str, str], BulkLoadReport] = {}
        self._datasets: dict[str, RectArray] = {}

    def add_dataset(self, label: str, rects: RectArray) -> None:
        """Register a dataset under a label (idempotent for equal labels)."""
        self._datasets[label] = rects

    def dataset(self, label: str) -> RectArray:
        """Look up a registered dataset by label."""
        try:
            return self._datasets[label]
        except KeyError:
            raise KeyError(
                f"dataset {label!r} not registered "
                f"(have {sorted(self._datasets)})"
            ) from None

    def tree(self, dataset_label: str, algorithm: str | PackingAlgorithm
             ) -> PagedRTree:
        """The packed tree for this dataset/algorithm, building on demand."""
        algo = (make_algorithm(algorithm) if isinstance(algorithm, str)
                else algorithm)
        key = (dataset_label, algo.name)
        if key not in self._trees:
            rects = self.dataset(dataset_label)
            with obs.span("bulk.build", dataset=dataset_label,
                          algorithm=algo.name):
                tree, report = bulk_load(rects, algo, capacity=self.capacity)
            self._trees[key] = tree
            self._reports[key] = report
        return self._trees[key]

    def report(self, dataset_label: str, algorithm: str) -> BulkLoadReport:
        """The build report for this dataset/algorithm (building on demand)."""
        self.tree(dataset_label, algorithm)  # ensure built
        algo_name = make_algorithm(algorithm).name
        return self._reports[(dataset_label, algo_name)]

    def quality(self, dataset_label: str, algorithm: str) -> TreeQuality:
        """Area/perimeter metrics for this dataset/algorithm's tree."""
        return measure_paged(self.tree(dataset_label, algorithm))

    def run(self, dataset_label: str, algorithm: str,
            workload: QueryWorkload, buffer_pages: int, *,
            policy: str = "lru") -> QueryRunResult:
        """One experiment cell: build (cached), replay, return the result."""
        tree = self.tree(dataset_label, algorithm)
        algo_name = make_algorithm(algorithm).name
        return run_queries(tree, workload, buffer_pages,
                           policy=policy, algorithm=algo_name)
