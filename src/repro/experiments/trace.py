"""Per-query access tracing.

The paper reports only *mean* disk accesses over 2,000 queries and
explicitly collects no confidence intervals ("differences of less than a
few percent should not be considered significant").  This module keeps
the per-query access counts so a reproduction can say more:

* dispersion (std/percentiles) — is the mean representative?
* tail behaviour — highly-skewed data gives heavy per-query tails, which
  is precisely why the paper restricts its CFD queries to a window;
* paired comparisons — per-query STR-vs-HS deltas on the *same* query
  stream give a far sharper verdict than two independent means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queries.workloads import QueryWorkload
from ..rtree.paged import PagedRTree

__all__ = ["QueryTrace", "trace_queries", "paired_comparison"]


@dataclass(frozen=True)
class QueryTrace:
    """Per-query disk-access counts for one (tree, workload, buffer) run."""

    algorithm: str
    workload: str
    buffer_pages: int
    accesses: np.ndarray  # (n_queries,) int64
    results: np.ndarray   # (n_queries,) int64

    def _require_queries(self, what: str) -> None:
        """Statistics over zero queries are undefined; fail loudly instead
        of letting numpy raise an opaque error (or silently emit NaN)."""
        if self.accesses.size == 0:
            raise ValueError(
                f"cannot compute {what}: trace for algorithm="
                f"{self.algorithm!r}, workload={self.workload!r} covers "
                "an empty workload (0 queries)"
            )

    @property
    def mean(self) -> float:
        self._require_queries("mean")
        return float(self.accesses.mean())

    @property
    def std(self) -> float:
        self._require_queries("std")
        return float(self.accesses.std())

    def percentile(self, q: float) -> float:
        """q-th percentile of per-query accesses."""
        self._require_queries(f"percentile({q})")
        return float(np.percentile(self.accesses, q))

    def summary(self) -> dict[str, float]:
        """Mean plus the dispersion numbers the paper does not report."""
        self._require_queries("summary")
        return {
            "mean": self.mean,
            "std": self.std,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": float(self.accesses.max()),
        }


def trace_queries(tree: PagedRTree, workload: QueryWorkload,
                  buffer_pages: int, *, policy: str = "lru",
                  algorithm: str = "?") -> QueryTrace:
    """Run a workload recording accesses per individual query."""
    searcher = tree.searcher(buffer_pages, policy=policy)
    accesses = np.empty(len(workload), dtype=np.int64)
    results = np.empty(len(workload), dtype=np.int64)
    previous = 0
    for i, query in enumerate(workload):
        results[i] = searcher.search(query).size
        accesses[i] = searcher.disk_accesses - previous
        previous = searcher.disk_accesses
    return QueryTrace(algorithm=algorithm, workload=workload.kind,
                      buffer_pages=buffer_pages, accesses=accesses,
                      results=results)


def paired_comparison(a: QueryTrace, b: QueryTrace) -> dict[str, float]:
    """Per-query paired deltas between two traces of the same workload.

    Returns the mean delta (``a - b``), the fraction of queries where
    each side wins, and a paired sign-test style margin.  Because both
    sides saw identical queries, this removes workload variance entirely.
    """
    if len(a.accesses) != len(b.accesses):
        raise ValueError("traces cover different query counts")
    if len(a.accesses) == 0:
        raise ValueError("cannot compare traces over empty workloads "
                         "(0 queries)")
    delta = a.accesses - b.accesses
    n = len(delta)
    return {
        "mean_delta": float(delta.mean()),
        "a_wins": float((delta < 0).sum() / n),
        "b_wins": float((delta > 0).sum() / n),
        "ties": float((delta == 0).sum() / n),
        "p90_abs_delta": float(np.percentile(np.abs(delta), 90)),
    }
