"""Synthetic-data experiments: Tables 1-4 and Figures 7-9 of the paper.

Table 1   — percent of the R-tree held by buffers of 10 and 250 pages.
Tables 2/3 — mean disk accesses for point / 1% / 9% region queries over
             point data and density-5 region data, buffer 10 / 250.
Table 4   — leaf/total area and perimeter sums for the 50k and 300k sets.
Figures 7-9 — disk accesses vs data size curves (point queries at buffers
             10 and 250; 1% region queries at buffer 10).

Every function takes an :class:`~repro.experiments.config.ExperimentConfig`
so the paper-exact and quick profiles share one code path.
"""

from __future__ import annotations

from ..datasets.synthetic import uniform_points, uniform_squares
from ..queries.workloads import workload_for
from .config import DEFAULT_CONFIG, ExperimentConfig
from .report import Series, Table
from .runner import TreeCache

__all__ = [
    "synthetic_cache",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure7",
    "figure8",
    "figure9",
]

#: The three algorithms in the paper's column order for these tables.
_ALGOS = ("STR", "HS", "NX")

#: Workload sections in the paper's row-band order.
_WORKLOADS = (
    ("point", "Point Queries"),
    ("region1", "Region Queries, Query Region = 1% of Data"),
    ("region9", "Region Queries, Query Region = 9% of Data"),
)


def _point_label(size: int) -> str:
    return f"synthetic-point-{size}"


def _region_label(size: int, density: float) -> str:
    return f"synthetic-d{density:g}-{size}"


def synthetic_cache(config: ExperimentConfig = DEFAULT_CONFIG) -> TreeCache:
    """A tree cache pre-loaded with every synthetic dataset in the config."""
    cache = TreeCache(capacity=config.capacity)
    for size in config.sizes:
        label = _point_label(size)
        cache.add_dataset(
            label, uniform_points(size, seed=config.dataset_seed(label))
        )
        for density in config.densities:
            if density == 0.0:
                continue
            rlabel = _region_label(size, density)
            cache.add_dataset(
                rlabel,
                uniform_squares(size, density,
                                seed=config.dataset_seed(rlabel)),
            )
    return cache


def table1(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 1: percent of the R-tree held by 10- and 250-page buffers."""
    cache = cache if cache is not None else synthetic_cache(config)
    table = Table(
        title="Table 1: Percent of R-Tree Held By Buffer",
        columns=("Data Size", "R-Tree Pages", "Buffer = 10", "Buffer = 250"),
    )
    for size in config.sizes:
        tree = cache.tree(_point_label(size), "STR")
        pages = tree.page_count
        table.add_row(
            size,
            pages,
            f"{min(100.0, 100.0 * 10 / pages):.2f}%",
            f"{min(100.0, 100.0 * 250 / pages):.2f}%",
        )
    table.notes.append(
        "pages counted from the built STR tree (capacity "
        f"{config.capacity}); paper reports 101/254/506/1011/3031"
    )
    return table


def _accesses_table(buffer_pages: int, config: ExperimentConfig,
                    cache: TreeCache | None) -> Table:
    """Shared engine for Tables 2 and 3."""
    cache = cache if cache is not None else synthetic_cache(config)
    density = max(config.densities)
    table = Table(
        title=(f"Number of Disk Accesses, Synthetic Data, "
               f"Buffersize = {buffer_pages}"),
        columns=(
            "Data Size",
            "STR", "HS", "NX", "HS/STR", "NX/STR",            # point data
            "STR(d5)", "HS(d5)", "NX(d5)", "HS/STR(d5)", "NX/STR(d5)",
        ),
    )
    for wkey, section in _WORKLOADS:
        table.add_section(section)
        for size in config.sizes:
            workload = workload_for(
                wkey, count=config.query_count,
                seed=config.workload_seed(f"{wkey}-{size}"),
            )
            cells: list[float] = []
            for dlabel in (_point_label(size), _region_label(size, density)):
                means = [
                    cache.run(dlabel, algo, workload, buffer_pages
                              ).mean_accesses
                    for algo in _ALGOS
                ]
                str_mean = means[0] if means[0] > 0 else float("nan")
                cells.extend(means)
                cells.append(means[1] / str_mean)
                cells.append(means[2] / str_mean)
            table.add_row(size // 1000, *cells)
    table.notes.append(
        f"{config.query_count} queries per cell, cold LRU buffer of "
        f"{buffer_pages} pages; sizes in thousands"
    )
    return table


def table2(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 2: disk accesses on synthetic data, buffer = 10 pages."""
    return _accesses_table(10, config, cache)


def table3(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None) -> Table:
    """Table 3: disk accesses on synthetic data, buffer = 250 pages."""
    return _accesses_table(250, config, cache)


def table4(config: ExperimentConfig = DEFAULT_CONFIG,
           cache: TreeCache | None = None,
           sizes: tuple[int, int] | None = None) -> Table:
    """Table 4: areas and perimeters for the 50k and 300k synthetic sets.

    ``sizes`` overrides the pair of sizes (quick profiles use smaller
    ones); the paper uses (50k, 300k).
    """
    cache = cache if cache is not None else synthetic_cache(config)
    if sizes is None:
        wanted = (50_000, 300_000)
        sizes = tuple(s for s in wanted if s in config.sizes) or (
            config.sizes[0], config.sizes[-1]
        )
    density = max(config.densities)
    cols = ["metric"]
    for size in sizes:
        for algo in _ALGOS:
            cols.append(f"{algo} {size // 1000}K")
    table = Table(
        title="Table 4: Synthetic Data Areas and Perimeters",
        columns=tuple(cols),
    )
    metric_names = ("leaf area", "total area",
                    "leaf perimeter", "total perimeter")
    for section, labeller in (
        ("Point Data", _point_label),
        (f"Region Data, Density = {density:g}",
         lambda s: _region_label(s, density)),
    ):
        table.add_section(section)
        qualities = {
            (size, algo): cache.quality(labeller(size), algo)
            for size in sizes for algo in _ALGOS
        }
        for metric in metric_names:
            row = [metric]
            for size in sizes:
                for algo in _ALGOS:
                    row.append(qualities[(size, algo)].as_row()[metric])
            table.add_row(*row)
    return table


def _figure_series(buffer_pages: int, workload_key: str,
                   config: ExperimentConfig, cache: TreeCache | None
                   ) -> list[Series]:
    """Four curves (HS/STR x density 5/0) of accesses vs data size."""
    cache = cache if cache is not None else synthetic_cache(config)
    density = max(config.densities)
    series = [
        Series(label=f"HS density = {density:g}"),
        Series(label=f"STR density = {density:g}"),
        Series(label="HS density = 0"),
        Series(label="STR density = 0"),
    ]
    for size in config.sizes:
        workload = workload_for(
            workload_key, count=config.query_count,
            seed=config.workload_seed(f"{workload_key}-{size}"),
        )
        runs = {
            (algo, dens): cache.run(
                _point_label(size) if dens == 0.0
                else _region_label(size, density),
                algo, workload, buffer_pages,
            ).mean_accesses
            for algo in ("HS", "STR") for dens in (0.0, density)
        }
        series[0].add(size / 1000, runs[("HS", density)])
        series[1].add(size / 1000, runs[("STR", density)])
        series[2].add(size / 1000, runs[("HS", 0.0)])
        series[3].add(size / 1000, runs[("STR", 0.0)])
    return series


def figure7(config: ExperimentConfig = DEFAULT_CONFIG,
            cache: TreeCache | None = None) -> list[Series]:
    """Figure 7: accesses vs size, point queries, buffer 10."""
    return _figure_series(10, "point", config, cache)


def figure8(config: ExperimentConfig = DEFAULT_CONFIG,
            cache: TreeCache | None = None) -> list[Series]:
    """Figure 8: accesses vs size, point queries, buffer 250."""
    return _figure_series(250, "point", config, cache)


def figure9(config: ExperimentConfig = DEFAULT_CONFIG,
            cache: TreeCache | None = None) -> list[Series]:
    """Figure 9: accesses vs size, 1% region queries, buffer 10."""
    return _figure_series(10, "region1", config, cache)
