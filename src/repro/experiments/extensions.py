"""Extension experiments beyond the paper's tables.

Each of these follows a thread the paper opens but does not evaluate:

* :func:`warmup_curve` — the LRU warm-up transient (the paper cites
  Bhide/Dan/Dias [2] and includes the transient in its averages; this
  makes it visible).
* :func:`parallel_speedup_table` — the conclusion's "parallel
  shared-nothing platform" future work, via round-robin declustering over
  D simulated disks (:class:`~repro.storage.striped.StripedPageStore`).
* :func:`packed_vs_dynamic_table` — quantifies the introduction's three
  claims against Guttman *and* R*-tree insertion.
* :func:`cost_model_table` — validates the Kamel-Faloutsos area/perimeter
  cost model (the paper's secondary metric) against measured accesses.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.geometry import Rect, RectArray
from ..core.packing.registry import make_algorithm
from ..queries.workloads import QueryWorkload, region_queries
from ..rtree.bulk import bulk_load, paged_from_dynamic
from ..rtree.costmodel import expected_node_accesses
from ..rtree.paged import PagedRTree
from ..rtree.rstar import RStarTree
from ..rtree.stats import measure_dynamic, measure_paged
from ..rtree.tree import RTree
from ..storage.page import required_page_size
from ..storage.store import MemoryPageStore
from ..storage.striped import StripedPageStore
from .report import Series, Table

__all__ = [
    "warmup_curve",
    "parallel_speedup_table",
    "packed_vs_dynamic_table",
    "cost_model_table",
]


def warmup_curve(tree: PagedRTree, workload: QueryWorkload,
                 buffer_pages: int, *, bucket: int = 50) -> Series:
    """Mean accesses per query over successive buckets of the query stream.

    Starts cold; the curve's initial descent is the LRU warm-up transient
    that the paper's averages silently include.
    """
    searcher = tree.searcher(buffer_pages)
    series = Series(label=f"buffer={buffer_pages}")
    done = 0
    last_total = 0
    for query in workload:
        searcher.search(query)
        done += 1
        if done % bucket == 0:
            series.add(done, (searcher.disk_accesses - last_total) / bucket)
            last_total = searcher.disk_accesses
    return series


def parallel_speedup_table(rects: RectArray, *, capacity: int = 100,
                           disk_counts: tuple[int, ...] = (1, 2, 4, 8),
                           query_side: float = 0.1, query_count: int = 500,
                           seed: int = 1) -> Table:
    """Declustered-query speedup vs number of disks.

    For each D, bulk-load the same STR tree onto a D-disk stripe, replay
    the workload un-buffered, and report total reads, the most-loaded
    disk's reads (the batch's parallel cost) and the speedup ratio.
    """
    table = Table(
        title="Extension: parallel shared-nothing declustering (STR)",
        columns=("disks", "total reads", "max per-disk reads", "speedup"),
    )
    page_size = required_page_size(capacity, rects.ndim)
    workload = region_queries(query_side, query_count, seed=seed)
    for disks in disk_counts:
        store = StripedPageStore(
            [MemoryPageStore(page_size) for _ in range(disks)]
        )
        tree, _ = bulk_load(rects, make_algorithm("STR"), capacity=capacity,
                            store=store)
        store.reset_disk_stats()
        searcher = tree.searcher(buffer_pages=1)
        for q in workload:
            searcher.search(q)
        table.add_row(disks, sum(store.per_disk_reads()),
                      store.parallel_cost(), store.parallel_speedup())
    return table


def packed_vs_dynamic_table(points: np.ndarray, *, capacity: int = 50,
                            query_side: float = 0.1, query_count: int = 300,
                            seed: int = 2) -> Table:
    """The introduction's claims (a)/(b)/(c) against Guttman and R*.

    Capacity defaults to 50 (not the paper's 100) because dynamic
    insertion cost grows steeply with node size in pure Python; the
    comparison's shape is capacity-independent.
    """
    rects = RectArray.from_points(points)
    workload = region_queries(query_side, query_count, seed=seed)
    table = Table(
        title="Extension: packed (STR) vs dynamic (Guttman, R*) builds",
        columns=("builder", "load seconds", "leaf fill", "node visits/query",
                 "leaf area", "leaf perimeter"),
    )

    def visits(paged: PagedRTree) -> float:
        searcher = paged.searcher(buffer_pages=1)
        for q in workload:
            searcher.search(q)
        return searcher.disk_accesses / len(workload)

    start = time.perf_counter()
    packed, report = bulk_load(rects, make_algorithm("STR"),
                               capacity=capacity)
    packed_secs = time.perf_counter() - start
    pq = measure_paged(packed)
    table.add_row("STR packed", packed_secs,
                  len(rects) / (report.leaf_pages * capacity),
                  visits(packed), pq.leaf_area, pq.leaf_perimeter)

    for label, tree in (("Guttman", RTree(capacity=capacity)),
                        ("R*", RStarTree(capacity=capacity))):
        start = time.perf_counter()
        for i, p in enumerate(points):
            tree.insert(Rect.from_point(tuple(p)), i)
        secs = time.perf_counter() - start
        dq = measure_dynamic(tree)
        table.add_row(label, secs, tree.space_utilization(),
                      visits(paged_from_dynamic(tree)),
                      dq.leaf_area, dq.leaf_perimeter)
    return table


def cost_model_table(rects: RectArray, *, capacity: int = 100,
                     query_side: float = 0.1, query_count: int = 400,
                     seed: int = 3) -> Table:
    """Predicted (area/perimeter model) vs measured un-buffered accesses."""
    table = Table(
        title=(f"Extension: Kamel-Faloutsos cost model vs measurement "
               f"(query side {query_side:g})"),
        columns=("algorithm", "predicted", "measured", "pred/meas"),
    )
    workload = region_queries(query_side, query_count, seed=seed)
    for name in ("STR", "HS", "NX"):
        tree, _ = bulk_load(rects, make_algorithm(name), capacity=capacity)
        predicted = expected_node_accesses(tree, query_side)
        searcher = tree.searcher(buffer_pages=1)
        for q in workload:
            searcher.search(q)
        measured = searcher.disk_accesses / len(workload)
        table.add_row(name, predicted, measured,
                      predicted / measured if measured else float("nan"))
    return table
