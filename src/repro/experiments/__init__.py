"""Experiment harness: one module per group of paper tables/figures.

Synthetic (Tables 1-4, Figures 7-9):   repro.experiments.synthetic_tables
GIS/TIGER (Tables 5-6, Figures 2-4, 10): repro.experiments.gis_tables
VLSI (Tables 7-8, Figure 11):          repro.experiments.vlsi_tables
CFD (Tables 9-10, Figures 5-6, 12):    repro.experiments.cfd_tables
"""

from .config import DEFAULT_CONFIG, QUICK_CONFIG, ExperimentConfig
from .report import Series, Table
from .runner import PAPER_CAPACITY, QueryRunResult, TreeCache, run_queries
from .trace import QueryTrace, paired_comparison, trace_queries

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "QUICK_CONFIG",
    "Table",
    "Series",
    "TreeCache",
    "QueryRunResult",
    "run_queries",
    "QueryTrace",
    "trace_queries",
    "paired_comparison",
    "PAPER_CAPACITY",
]
