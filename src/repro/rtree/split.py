"""Guttman node-splitting algorithms.

When a dynamic insert overflows a node, its entries must be divided between
two nodes so that total dead space is small.  Guttman (1984) gives three
strategies; we implement the two used in practice:

* :class:`QuadraticSplit` — picks the pair of entries that would waste the
  most area together as seeds, then assigns the rest greedily by the
  *difference* of enlargements (most decisive entry first).
* :class:`LinearSplit` — picks seeds by normalised separation along some
  dimension, then assigns the rest in arbitrary order by enlargement.

Both honour the minimum fill ``m``: once a group must absorb all remaining
entries to reach ``m``, it does.
"""

from __future__ import annotations

import abc

from ..core.geometry import Rect
from .node import Entry, RTreeError

__all__ = ["SplitAlgorithm", "QuadraticSplit", "LinearSplit", "make_split"]


class SplitAlgorithm(abc.ABC):
    """Strategy interface: divide an overflowing entry list into two groups."""

    name: str = "abstract"

    @abc.abstractmethod
    def split(self, entries: list[Entry], min_fill: int
              ) -> tuple[list[Entry], list[Entry]]:
        """Partition ``entries`` into two non-empty groups of >= min_fill."""

    def _check(self, entries: list[Entry], min_fill: int) -> None:
        if len(entries) < 2:
            raise RTreeError("cannot split fewer than two entries")
        if min_fill < 1 or 2 * min_fill > len(entries):
            raise RTreeError(
                f"min_fill {min_fill} infeasible for {len(entries)} entries"
            )


def _group_mbr(group: list[Entry]) -> Rect:
    out = group[0].rect
    for e in group[1:]:
        out = out.union(e.rect)
    return out


class QuadraticSplit(SplitAlgorithm):
    """Guttman's quadratic-cost split (the classic default)."""

    name = "quadratic"

    def split(self, entries: list[Entry], min_fill: int
              ) -> tuple[list[Entry], list[Entry]]:
        self._check(entries, min_fill)
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        # Remove the later index first so the earlier stays valid.
        for idx in sorted((seed_a, seed_b), reverse=True):
            remaining.pop(idx)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = group_a[0].rect
        mbr_b = group_b[0].rect

        while remaining:
            # Forced assignment when one group must take everything left.
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                remaining.clear()
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                remaining.clear()
                break
            idx, prefer_a = self._pick_next(remaining, mbr_a, mbr_b,
                                            len(group_a), len(group_b))
            entry = remaining.pop(idx)
            if prefer_a:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.rect)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: list[Entry]) -> tuple[int, int]:
        """The pair whose combined MBR wastes the most area."""
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            ri = entries[i].rect
            for j in range(i + 1, len(entries)):
                rj = entries[j].rect
                waste = ri.union(rj).area() - ri.area() - rj.area()
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(remaining: list[Entry], mbr_a: Rect, mbr_b: Rect,
                   size_a: int, size_b: int) -> tuple[int, bool]:
        """Entry with max |d_a - d_b|, and which group it prefers."""
        best_idx = 0
        best_diff = -1.0
        best_prefer_a = True
        for i, entry in enumerate(remaining):
            da = mbr_a.enlargement(entry.rect)
            db = mbr_b.enlargement(entry.rect)
            diff = abs(da - db)
            if diff > best_diff:
                best_diff = diff
                best_idx = i
                if da != db:
                    best_prefer_a = da < db
                elif mbr_a.area() != mbr_b.area():
                    best_prefer_a = mbr_a.area() < mbr_b.area()
                else:
                    best_prefer_a = size_a <= size_b
        return best_idx, best_prefer_a


class LinearSplit(SplitAlgorithm):
    """Guttman's linear-cost split."""

    name = "linear"

    def split(self, entries: list[Entry], min_fill: int
              ) -> tuple[list[Entry], list[Entry]]:
        self._check(entries, min_fill)
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        for idx in sorted((seed_a, seed_b), reverse=True):
            remaining.pop(idx)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = group_a[0].rect
        mbr_b = group_b[0].rect

        for pos, entry in enumerate(remaining):
            left = len(remaining) - pos
            if len(group_a) + left == min_fill:
                group_a.extend(remaining[pos:])
                break
            if len(group_b) + left == min_fill:
                group_b.extend(remaining[pos:])
                break
            da = mbr_a.enlargement(entry.rect)
            db = mbr_b.enlargement(entry.rect)
            if da < db or (da == db and len(group_a) <= len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.rect)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: list[Entry]) -> tuple[int, int]:
        """Pair with greatest normalised separation along any dimension."""
        ndim = entries[0].rect.ndim
        best_sep = -1.0
        pair = (0, 1)
        for d in range(ndim):
            highest_lo_idx = max(range(len(entries)),
                                 key=lambda i: entries[i].rect.lo[d])
            lowest_hi_idx = min(range(len(entries)),
                                key=lambda i: entries[i].rect.hi[d])
            if highest_lo_idx == lowest_hi_idx:
                continue
            width = (max(e.rect.hi[d] for e in entries)
                     - min(e.rect.lo[d] for e in entries))
            if width <= 0.0:
                continue
            sep = (entries[highest_lo_idx].rect.lo[d]
                   - entries[lowest_hi_idx].rect.hi[d]) / width
            if sep > best_sep:
                best_sep = sep
                pair = (lowest_hi_idx, highest_lo_idx)
        if pair[0] == pair[1]:  # fully degenerate data; any pair works
            pair = (0, 1)
        return pair


def make_split(name: str) -> SplitAlgorithm:
    """Instantiate a split algorithm by name (``quadratic``/``linear``)."""
    table = {"quadratic": QuadraticSplit, "linear": LinearSplit}
    try:
        return table[name.lower()]()
    except KeyError:
        raise RTreeError(
            f"unknown split {name!r}; choose from {sorted(table)}"
        ) from None
