"""Read-optimised paged R-tree.

A :class:`PagedRTree` is what a packing algorithm produces: a static tree
whose nodes live one-per-page in a :class:`~repro.storage.store.PageStore`.
Queries run through a :class:`PagedSearcher`, which routes every node visit
through an LRU (or other) buffer pool so that *disk accesses per query* —
the paper's primary metric — falls straight out of the shared
:class:`~repro.storage.counters.IOStats`.

Design notes
------------
* Node visits are vectorized: the buffer caches decoded
  :class:`~repro.storage.page.NodePage` values and each visit does a single
  numpy overlap test over the node's entries.  The *unit of caching and
  accounting is still a page*, so the access counts are identical to a
  byte-level buffer.
* The root page is read on every query like any other page (the paper uses
  plain LRU for all levels; pinning is available for the ablation).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Container, Iterator, Sequence

import numpy as np

from ..core.geometry import GeometryError, Rect
from ..obs import runtime as obs
from ..storage.buffer import BufferPool, ReplacementPolicy
from ..storage.counters import IOStats
from ..storage.integrity import IntegrityError
from ..storage.page import NodePage, PageFormatError, decode_node
from ..storage.store import PageStore, StoreError

__all__ = ["PagedRTree", "PagedSearcher", "SearchResult", "LevelSummary"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one (possibly degraded) paged search.

    ``partial=True`` means at least one subtree was skipped — because its
    root page was quarantined or failed to read in degraded mode — so
    ``ids`` is a *subset* of the true answer, never a superset: a degraded
    response can miss matches but cannot invent them.
    """

    ids: np.ndarray
    partial: bool
    skipped_subtrees: int
    nodes_visited: int


@dataclass(frozen=True)
class LevelSummary:
    """Per-level aggregate used by the area/perimeter tables."""

    level: int
    node_count: int
    entry_count: int
    total_area: float
    total_perimeter: float


class PagedRTree:
    """A static R-tree whose nodes are pages in a store.

    Instances are produced by :func:`repro.rtree.bulk.bulk_load`; the
    constructor only wires up already-written pages.
    """

    def __init__(self, store: PageStore, root_page: int, *, height: int,
                 ndim: int, capacity: int, size: int):
        if height < 1:
            raise GeometryError("height must be >= 1")
        self.store = store
        self.root_page = root_page
        self.height = height
        self.ndim = ndim
        self.capacity = capacity
        self._size = size

    def __len__(self) -> int:
        """Number of indexed data rectangles."""
        return self._size

    @property
    def page_count(self) -> int:
        """Total pages (nodes) in the tree's store."""
        return self.store.page_count

    # -- persistence ------------------------------------------------------

    def save_meta(self, path: str | os.PathLike) -> None:
        """Write the tree header (root page, height, geometry) as JSON.

        The node pages themselves live in the page store; for a
        :class:`~repro.storage.store.FilePageStore` this sidecar is all
        that is needed to reopen the tree in another process — see
        :meth:`open`.  Durable stores additionally persist the same
        metadata in their superblock (see :meth:`commit_meta` /
        :meth:`from_store`), making the page file self-contained.
        """
        meta = {
            "format": "repro-rtree-meta-v1",
            "root_page": self.root_page,
            "height": self.height,
            "ndim": self.ndim,
            "capacity": self.capacity,
            "size": self._size,
            "page_size": self.store.page_size,
        }
        with open(os.fspath(path), "w") as f:
            json.dump(meta, f, indent=2)

    def commit_meta(self) -> bool:
        """Persist the tree header into the store's superblock, when the
        store has one (returns whether it did).

        For a durable :class:`~repro.storage.store.FilePageStore` this is
        the build's atomic commit point: pages are fsynced, the superblock
        is shadow-written, and the write journal is checkpointed.
        """
        if not getattr(self.store, "supports_tree_meta", False):
            return False
        self.store.set_tree_meta({
            "height": self.height,
            "root_page": self.root_page,
            "ndim": self.ndim,
            "capacity": self.capacity,
            "size": self._size,
        })
        return True

    @classmethod
    def open(cls, store: PageStore, meta_path: str | os.PathLike
             ) -> "PagedRTree":
        """Reattach a tree whose pages are already in ``store``."""
        with open(os.fspath(meta_path)) as f:
            meta = json.load(f)
        if meta.get("format") != "repro-rtree-meta-v1":
            raise GeometryError(
                f"{meta_path}: not a repro R-tree meta file"
            )
        if meta["page_size"] != store.page_size:
            raise GeometryError(
                f"store page size {store.page_size} != saved "
                f"{meta['page_size']}"
            )
        return cls(
            store,
            int(meta["root_page"]),
            height=int(meta["height"]),
            ndim=int(meta["ndim"]),
            capacity=int(meta["capacity"]),
            size=int(meta["size"]),
        )

    @classmethod
    def from_store(cls, store: PageStore) -> "PagedRTree":
        """Reattach a tree from a self-describing (durable) store alone.

        The tree header lives in the store's superblock, committed by
        :meth:`commit_meta` (which :func:`repro.rtree.bulk.bulk_load` calls
        automatically).  A store whose build never committed refuses with
        a precise error rather than serving a half-written tree.
        """
        meta = getattr(store, "tree_meta", None)
        if meta is None:
            path = getattr(store, "path", "store")
            raise StoreError(
                f"{path}: superblock holds no tree metadata — the build "
                f"never committed (crash before completion?) or the store "
                f"is not durable; pass a meta sidecar to PagedRTree.open"
            )
        return cls(
            store,
            int(meta["root_page"]),
            height=int(meta["height"]),
            ndim=int(meta["ndim"]),
            capacity=int(meta["capacity"]),
            size=int(meta["size"]),
        )

    # -- uncounted access (stats, validation, visualisation) -----------------

    def read_node(self, page_id: int) -> NodePage:
        """Decode one node *without* touching I/O counters.

        Metric collection (area/perimeter tables, validation, SVG plots)
        must not pollute the experiment's access counts, so it uses
        :meth:`PageStore.peek_page`.
        """
        return decode_node(self.store.peek_page(page_id), page_id=page_id,
                           source=getattr(self.store, "path", None))

    def root_node(self) -> NodePage:
        """Decode the root page (uncounted)."""
        return self.read_node(self.root_page)

    def iter_nodes(self) -> Iterator[tuple[int, NodePage]]:
        """Breadth-first ``(page_id, node)`` walk, uncounted."""
        queue = [self.root_page]
        while queue:
            page_id = queue.pop(0)
            node = self.read_node(page_id)
            yield page_id, node
            if not node.is_leaf:
                queue.extend(int(c) for c in node.children)

    def iter_level(self, level: int) -> Iterator[tuple[int, NodePage]]:
        """All nodes at a leaf-anchored level (0 = leaves), uncounted."""
        for page_id, node in self.iter_nodes():
            if node.level == level:
                yield page_id, node

    def level_pages(self, level: int) -> list[int]:
        """Page ids of every node at a leaf-anchored level."""
        return [pid for pid, _ in self.iter_level(level)]

    def level_summaries(self) -> list[LevelSummary]:
        """Area/perimeter roll-up per level (root level included).

        Summaries cover the MBRs *stored in* nodes at each level, i.e. the
        leaf summary aggregates over leaf nodes' own MBRs as the paper's
        "leaf" rows do — see :mod:`repro.rtree.stats` for the exact paper
        metric computed from these.
        """
        acc: dict[int, list] = {}
        for _, node in self.iter_nodes():
            slot = acc.setdefault(node.level, [0, 0, 0.0, 0.0])
            slot[0] += 1
            slot[1] += node.count
            slot[2] += node.rects.total_area()
            slot[3] += node.rects.total_perimeter()
        return [
            LevelSummary(level, *acc[level])
            for level in sorted(acc, reverse=True)
        ]

    def mbr(self) -> Rect:
        """MBR of the whole dataset."""
        return self.root_node().rects.mbr()

    # -- searchers ------------------------------------------------------------

    def searcher(self, buffer_pages: int, *,
                 policy: str | ReplacementPolicy = "lru",
                 stats: IOStats | None = None) -> "PagedSearcher":
        """A query executor with its own buffer of ``buffer_pages`` pages."""
        return PagedSearcher(self, buffer_pages, policy=policy, stats=stats)


class PagedSearcher:
    """Executes queries against a :class:`PagedRTree` through a buffer pool.

    One searcher corresponds to one experiment run in the paper: a freshly
    cold buffer of a given size, then a stream of queries whose misses are
    disk accesses.
    """

    def __init__(self, tree: PagedRTree, buffer_pages: int, *,
                 policy: str | ReplacementPolicy = "lru",
                 stats: IOStats | None = None):
        self.tree = tree
        self.stats = stats if stats is not None else IOStats()

        def fetch(page_id: int) -> NodePage:
            # Reads triggered by this searcher are charged to its own stats,
            # keeping per-experiment accounting separate from build I/O.
            # The read/decode spans keep raw page I/O and page-to-node
            # decoding in distinct phase_of buckets (read/decode), so
            # their self time is separable from the node walk above.
            with obs.span("query.page_read"):
                data = tree.store.read_page(page_id, self.stats)
            with obs.span("query.page_decode"):
                return decode_node(data, page_id=page_id,
                                   source=getattr(tree.store, "path", None))

        self.buffer: BufferPool[int, NodePage] = BufferPool(
            buffer_pages, fetch, stats=self.stats, policy=policy
        )

    # -- queries -----------------------------------------------------------

    #: Exceptions a *degraded* search absorbs as unreachable subtrees:
    #: store failures (including a fast-failing open circuit breaker),
    #: checksum mismatches, undecodable pages, and raw I/O errors.
    DEGRADED_ERRORS = (StoreError, IntegrityError, PageFormatError, OSError)

    def search(self, query: Rect) -> np.ndarray:
        """Data ids of all rectangles intersecting ``query``."""
        return self.search_detailed(query).ids

    def search_detailed(
        self,
        query: Rect,
        *,
        check: Callable[[], None] | None = None,
        quarantined: Container[int] | None = None,
        degraded: bool = False,
        on_page_error: Callable[[int, Exception], None] | None = None,
        root_page: int | None = None,
    ) -> SearchResult:
        """Search with serving-layer hooks; returns a :class:`SearchResult`.

        Parameters
        ----------
        check:
            Called between node visits (cooperative cancellation): a
            deadline's ``check`` raises there to abandon an expired query
            mid-walk instead of finishing useless work.
        quarantined:
            Page ids known to be bad (e.g. from ``repro fsck
            --quarantine``).  Their subtrees are skipped without any I/O
            and the result is flagged partial.
        degraded:
            Absorb :data:`DEGRADED_ERRORS` raised while reading a node:
            the failed subtree is skipped and counted instead of failing
            the whole query.  Off (the default) such errors propagate.
        on_page_error:
            Observer called with ``(page_id, exc)`` for every absorbed
            page failure — the server uses it to grow its runtime
            quarantine set.
        root_page:
            Start the walk at this page instead of the tree root.  The
            worker pool's scatter-gather fan-out dispatches one
            top-level subtree per request this way; results over
            subtrees union to exactly the full-tree answer.
        """
        if query.ndim != self.tree.ndim:
            raise GeometryError("query dimensionality mismatch")
        # The spans only *time* the walk; all counting stays in the
        # buffer/store IOStats, so telemetry cannot shift access counts.
        # ``query.node_walk`` covers the whole loop while page fetches
        # open nested read/decode spans, so the walk's *self* time is
        # pure in-memory tree work — the decode-vs-walk split the
        # ROADMAP's raw-speed item asks for.
        with obs.span("query.search"), obs.span("query.node_walk"):
            hits: list[np.ndarray] = []
            skipped = 0
            visited = 0
            stack = [self.tree.root_page if root_page is None
                     else root_page]
            while stack:
                page_id = stack.pop()
                if check is not None:
                    check()
                if quarantined is not None and page_id in quarantined:
                    skipped += 1
                    continue
                try:
                    node = self.buffer.get(page_id)
                except self.DEGRADED_ERRORS as exc:
                    if not degraded:
                        raise
                    skipped += 1
                    if on_page_error is not None:
                        on_page_error(page_id, exc)
                    continue
                visited += 1
                mask = node.rects.intersects_rect(query)
                if not mask.any():
                    continue
                matched = node.children[mask]
                if node.is_leaf:
                    hits.append(matched)
                else:
                    stack.extend(int(c) for c in matched)
            ids = (np.concatenate(hits) if hits
                   else np.empty(0, dtype=np.int64))
            return SearchResult(ids=ids, partial=skipped > 0,
                                skipped_subtrees=skipped,
                                nodes_visited=visited)

    def point_query(self, point: Sequence[float]) -> np.ndarray:
        """Data ids of all rectangles containing ``point``."""
        return self.search(Rect.from_point(point))

    def count(self, query: Rect) -> int:
        """Number of matches without keeping the ids."""
        return int(self.search(query).size)

    # -- experiment plumbing --------------------------------------------------

    def pin_levels(self, levels: Sequence[int]) -> None:
        """Pin every page at the given leaf-anchored levels (ablation)."""
        for level in levels:
            for page_id in self.tree.level_pages(level):
                self.buffer.pin(page_id)

    def warm(self, queries: Sequence[Rect]) -> None:
        """Run queries without keeping their results (buffer warm-up)."""
        for q in queries:
            self.search(q)

    def reset_stats(self) -> None:
        """Zero this searcher's access counters."""
        self.stats.reset()

    @property
    def disk_accesses(self) -> int:
        """Total page fetches so far (the paper's metric, before averaging)."""
        return self.stats.disk_reads
