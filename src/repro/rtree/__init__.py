"""R-tree substrate: dynamic Guttman tree and packed/paged tree."""

from .bulk import BulkLoadReport, bulk_load, paged_from_dynamic
from .costmodel import (
    expected_accesses_by_level,
    expected_accesses_quadratic,
    expected_node_accesses,
)
from .hilbert_rtree import HilbertRTree
from .knn import knn
from .node import Entry, Node, RTreeError
from .paged import PagedRTree, PagedSearcher, SearchResult
from .rstar import RStarSplit, RStarTree
from .split import LinearSplit, QuadraticSplit, make_split
from .stats import TreeQuality, measure_dynamic, measure_paged
from .tree import RTree
from .validate import ValidationError, validate_dynamic, validate_paged

__all__ = [
    "RTree",
    "HilbertRTree",
    "RStarTree",
    "RStarSplit",
    "Entry",
    "Node",
    "RTreeError",
    "PagedRTree",
    "PagedSearcher",
    "SearchResult",
    "bulk_load",
    "paged_from_dynamic",
    "BulkLoadReport",
    "knn",
    "expected_node_accesses",
    "expected_accesses_by_level",
    "expected_accesses_quadratic",
    "QuadraticSplit",
    "LinearSplit",
    "make_split",
    "TreeQuality",
    "measure_paged",
    "measure_dynamic",
    "validate_paged",
    "validate_dynamic",
    "ValidationError",
]
