"""R*-tree insertion (Beckmann, Kriegel, Schneider, Seeger; SIGMOD 1990).

The paper's introduction notes that "other dynamic algorithms [1, 13]
improve the quality of the R-tree, but still are not competitive ... when
compared to loading algorithms".  Reference [1] is the R*-tree; having it
in the library lets the packed-vs-dynamic experiments quantify that exact
sentence against the *best* dynamic baseline, not just Guttman.

Implemented here as a subclass of the Guttman tree with the three R*
ingredients:

* **ChooseSubtree** — at the level just above the leaves, pick the child
  whose *overlap* with its siblings grows least (ties: least area
  enlargement, then least area); higher up, Guttman's least-enlargement.
* **R\\* split** — choose the split axis by minimising the summed margins
  of all candidate distributions along it, then pick the distribution
  with minimal overlap (ties: minimal total area).
* **Forced re-insertion** — on the first overflow at each level per
  logical insertion, re-insert the 30% of entries whose centers are
  farthest from the node's center instead of splitting.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Rect
from .node import Entry, Node
from .split import SplitAlgorithm
from .tree import RTree

__all__ = ["RStarTree", "RStarSplit", "REINSERT_FRACTION"]

#: Beckmann et al.'s experimentally-chosen p: re-insert 30% on overflow.
REINSERT_FRACTION = 0.3


def _overlap_area(a: Rect, b: Rect) -> float:
    inter = a.intersection(b)
    return 0.0 if inter is None else inter.area()


class RStarSplit(SplitAlgorithm):
    """The R* topological split."""

    name = "rstar"

    def split(self, entries: list[Entry], min_fill: int
              ) -> tuple[list[Entry], list[Entry]]:
        self._check(entries, min_fill)
        ndim = entries[0].rect.ndim
        best_axis = self._choose_axis(entries, min_fill, ndim)
        return self._choose_distribution(entries, min_fill, best_axis)

    @staticmethod
    def _sorted_views(entries: list[Entry], axis: int) -> list[list[Entry]]:
        """The two sortings R* considers per axis: by lower and upper edge."""
        by_lo = sorted(entries, key=lambda e: (e.rect.lo[axis],
                                               e.rect.hi[axis]))
        by_hi = sorted(entries, key=lambda e: (e.rect.hi[axis],
                                               e.rect.lo[axis]))
        return [by_lo, by_hi]

    @staticmethod
    def _distributions(view: list[Entry], min_fill: int):
        """All (left, right) cuts keeping both sides >= min_fill."""
        for k in range(min_fill, len(view) - min_fill + 1):
            yield view[:k], view[k:]

    @classmethod
    def _group_mbr(cls, group: list[Entry]) -> Rect:
        mbr = group[0].rect
        for e in group[1:]:
            mbr = mbr.union(e.rect)
        return mbr

    @classmethod
    def _choose_axis(cls, entries: list[Entry], min_fill: int,
                     ndim: int) -> int:
        best_axis = 0
        best_margin = float("inf")
        for axis in range(ndim):
            margin_sum = 0.0
            for view in cls._sorted_views(entries, axis):
                for left, right in cls._distributions(view, min_fill):
                    margin_sum += (cls._group_mbr(left).margin()
                                   + cls._group_mbr(right).margin())
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        return best_axis

    @classmethod
    def _choose_distribution(cls, entries: list[Entry], min_fill: int,
                             axis: int) -> tuple[list[Entry], list[Entry]]:
        best = None
        best_key = (float("inf"), float("inf"))
        for view in cls._sorted_views(entries, axis):
            for left, right in cls._distributions(view, min_fill):
                mbr_l = cls._group_mbr(left)
                mbr_r = cls._group_mbr(right)
                key = (_overlap_area(mbr_l, mbr_r),
                       mbr_l.area() + mbr_r.area())
                if key < best_key:
                    best_key = key
                    best = (list(left), list(right))
        assert best is not None
        return best


class RStarTree(RTree):
    """Dynamic R-tree with R* insertion heuristics.

    Same public API as :class:`~repro.rtree.tree.RTree`; only the
    insertion path differs.  Deletion reuses Guttman's CondenseTree.
    """

    def __init__(self, ndim: int = 2, capacity: int = 100, *,
                 min_fill: float = 0.4,
                 reinsert_fraction: float = REINSERT_FRACTION):
        super().__init__(ndim=ndim, capacity=capacity, min_fill=min_fill,
                         split=RStarSplit())
        if not 0.0 <= reinsert_fraction < 0.5:
            raise ValueError("reinsert_fraction must be in [0, 0.5)")
        self.reinsert_count = max(
            1, int(capacity * reinsert_fraction)
        ) if reinsert_fraction > 0 else 0
        # Levels that already re-inserted during the current logical insert.
        self._reinserted_levels: set[int] = set()

    # -- insertion ----------------------------------------------------------

    def insert(self, rect, data_id: int) -> None:
        self._reinserted_levels = set()
        super().insert(rect, data_id)

    def _choose_node(self, rect, level: int) -> Node:
        node = self._root
        while node.level > level:
            if node.level == 1:
                best = self._least_overlap_child(node, rect)
            else:
                best = min(
                    node.entries,
                    key=lambda e: (e.rect.enlargement(rect),
                                   e.rect.area()),
                )
            node = best.child  # type: ignore[assignment]
        return node

    @staticmethod
    def _least_overlap_child(node: Node, rect) -> Entry:
        """R* ChooseSubtree at the level above the leaves."""
        rects = [e.rect for e in node.entries]
        best = None
        best_key = None
        for i, entry in enumerate(node.entries):
            grown = entry.rect.union(rect)
            overlap_delta = 0.0
            for j, other in enumerate(rects):
                if j == i:
                    continue
                overlap_delta += (_overlap_area(grown, other)
                                  - _overlap_area(entry.rect, other))
            key = (overlap_delta, entry.rect.enlargement(rect),
                   entry.rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    def _handle_overflow(self, node: Node) -> None:
        """Forced re-insert once per level per insertion, then split."""
        if (self.reinsert_count > 0
                and node.parent is not None
                and node.level not in self._reinserted_levels):
            self._reinserted_levels.add(node.level)
            self._reinsert(node)
        else:
            self._split_node(node)

    def _reinsert(self, node: Node) -> None:
        center = np.asarray(node.mbr().center)
        distances = [
            float(np.linalg.norm(np.asarray(e.rect.center) - center))
            for e in node.entries
        ]
        order = np.argsort(distances)  # close first; far entries leave
        keep_n = node.count - min(self.reinsert_count, node.count - 1)
        keep = [node.entries[i] for i in order[:keep_n]]
        spill = [node.entries[i] for i in order[keep_n:]]
        node.entries = keep
        parent = node.parent
        assert parent is not None
        parent.entry_for(node).rect = node.mbr()
        self._fix_ancestor_mbrs(parent)
        # Far-reinsert: distant entries first (Beckmann's 'close reinsert'
        # inverts this; far-first empirically spreads overflow better here).
        for entry in spill:
            if entry.child is not None:
                entry.child.parent = None
            self._insert_entry(entry, node.level)

    def _fix_ancestor_mbrs(self, node: Node) -> None:
        while node.parent is not None:
            node.parent.entry_for(node).rect = node.mbr()
            node = node.parent
