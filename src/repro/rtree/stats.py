"""Tree-quality metrics: the paper's area and perimeter tables.

The paper's secondary comparison metric is "the sum of the area and
perimeter of the MBRs of the R-tree nodes", reported two ways:

* **leaf** — summed over the MBRs of leaf-level nodes only (argued to be
  the most meaningful, since upper levels are usually buffered);
* **total** — summed over all nodes at all levels.

A node's MBR is the MBR of the entries it stores.  For every non-root node
that rectangle is stored in its parent, so "sum over nodes at level L" is
equivalently "sum over entries at level L+1" plus, for the root, its own
enclosing MBR.  We compute directly from each node's entry set, which
handles the root uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .paged import PagedRTree
from .tree import RTree

__all__ = ["TreeQuality", "measure_paged", "measure_dynamic"]


@dataclass(frozen=True)
class TreeQuality:
    """The four numbers each of the paper's Tables 4, 6, 8 and 10 reports."""

    leaf_area: float
    total_area: float
    leaf_perimeter: float
    total_perimeter: float
    node_count: int
    height: int

    def as_row(self) -> dict[str, float]:
        """Row dict in the paper's table order."""
        return {
            "leaf area": self.leaf_area,
            "total area": self.total_area,
            "leaf perimeter": self.leaf_perimeter,
            "total perimeter": self.total_perimeter,
        }


def measure_paged(tree: PagedRTree) -> TreeQuality:
    """Quality metrics of a packed/paged tree (uncounted page reads)."""
    leaf_area = 0.0
    leaf_perimeter = 0.0
    total_area = 0.0
    total_perimeter = 0.0
    nodes = 0
    for _, node in tree.iter_nodes():
        mbr = node.rects.mbr()
        area = mbr.area()
        perim = mbr.perimeter()
        nodes += 1
        total_area += area
        total_perimeter += perim
        if node.is_leaf:
            leaf_area += area
            leaf_perimeter += perim
    return TreeQuality(
        leaf_area=leaf_area,
        total_area=total_area,
        leaf_perimeter=leaf_perimeter,
        total_perimeter=total_perimeter,
        node_count=nodes,
        height=tree.height,
    )


def measure_dynamic(tree: RTree) -> TreeQuality:
    """Quality metrics of a dynamic in-memory tree."""
    leaf_area = 0.0
    leaf_perimeter = 0.0
    total_area = 0.0
    total_perimeter = 0.0
    nodes = 0
    for node in tree.iter_nodes():
        if node.count == 0:
            continue  # only possible for an empty root
        mbr = node.mbr()
        area = mbr.area()
        perim = mbr.perimeter()
        nodes += 1
        total_area += area
        total_perimeter += perim
        if node.is_leaf:
            leaf_area += area
            leaf_perimeter += perim
    return TreeQuality(
        leaf_area=leaf_area,
        total_area=total_area,
        leaf_perimeter=leaf_perimeter,
        total_perimeter=total_perimeter,
        node_count=nodes,
        height=tree.height,
    )
