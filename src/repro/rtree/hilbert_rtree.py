"""Dynamic Hilbert R-tree (Kamel & Faloutsos, VLDB 1995 — the paper's [7]).

The packing comparison paper cites the Hilbert R-tree as the dynamic
descendant of Hilbert-Sort packing: keep *all* entries totally ordered by
the Hilbert value of their center, so the tree is structurally a B+-tree
over Hilbert keys whose nodes additionally maintain MBRs for spatial
search.  Inserting then never needs Guttman's heuristics — position is
dictated by the key — and leaves stay as compact as HS packing produces.

Implementation notes
--------------------
* Nodes keep entries sorted by Hilbert key; internal entries carry the
  subtree's **LHV** (largest Hilbert value) for routing and its MBR for
  queries.
* Overflow first tries to **rotate one entry into an adjacent sibling**
  (the cooperative flavour of Kamel & Faloutsos's s-to-(s+1) split policy
  with s = 2); only when both neighbours are full does the node split in
  half.  This keeps utilisation well above plain half-splitting.
* Underflow on delete borrows from a sibling or merges with it, exactly
  like a B+-tree.
* Hilbert keys come from :mod:`repro.hilbert.float_key` on a fixed key
  ``bounds`` rectangle supplied at construction (growing data beyond the
  bounds still works — keys clamp — but locality degrades, so pass
  generous bounds).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.geometry import GeometryError, Rect, enclosing_mbr, unit_square
from ..hilbert.float_key import DEFAULT_ORDER, float_hilbert_keys
from .node import RTreeError

__all__ = ["HilbertRTree"]


@dataclass
class _HEntry:
    """One slot: Hilbert key + MBR + (data id | child)."""

    key: int
    rect: Rect
    data_id: Optional[int] = None
    child: Optional["_HNode"] = None


@dataclass
class _HNode:
    level: int
    entries: list[_HEntry] = field(default_factory=list)
    parent: Optional["_HNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def count(self) -> int:
        return len(self.entries)

    def lhv(self) -> int:
        """Largest Hilbert value in the subtree (entries stay sorted)."""
        return self.entries[-1].key if self.entries else -1

    def mbr(self) -> Rect:
        if not self.entries:
            raise RTreeError("empty node has no MBR")
        return enclosing_mbr(e.rect for e in self.entries)

    def keys(self) -> list[int]:
        return [e.key for e in self.entries]

    def index_in_parent(self) -> int:
        assert self.parent is not None
        for i, entry in enumerate(self.parent.entries):
            if entry.child is self:
                return i
        raise RTreeError("node missing from its parent")


class HilbertRTree:
    """A dynamic R-tree ordered by Hilbert value (B+-tree structure).

    Parameters
    ----------
    ndim, capacity:
        As for :class:`~repro.rtree.tree.RTree`.
    curve_order:
        Bits per dimension of the Hilbert key grid.
    bounds:
        Rectangle the key grid spans (default: unit square).  Points
        outside clamp onto the boundary cells.
    """

    def __init__(self, ndim: int = 2, capacity: int = 100, *,
                 curve_order: int = DEFAULT_ORDER,
                 bounds: Rect | None = None):
        if ndim < 1:
            raise GeometryError("ndim must be >= 1")
        if capacity < 3:
            raise RTreeError("capacity must be >= 3 for 2-to-3 splits")
        self.ndim = ndim
        self.capacity = capacity
        self.min_entries = max(1, capacity // 2)
        self.curve_order = curve_order
        self.bounds = bounds if bounds is not None else unit_square(ndim)
        if self.bounds.ndim != ndim:
            raise GeometryError("bounds dimensionality mismatch")
        self._root = _HNode(level=0)
        self._size = 0

    # -- keys ------------------------------------------------------------

    def hilbert_key(self, rect: Rect) -> int:
        """Hilbert key of a rectangle's center on this tree's grid."""
        center = np.asarray(rect.center)[None, :]
        key = float_hilbert_keys(center, self.bounds,
                                 order=self.curve_order)
        return int(key[0])

    # -- basics -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._root.level + 1

    def is_empty(self) -> bool:
        """True when the tree holds no records."""
        return self._size == 0

    def iter_nodes(self) -> Iterator[_HNode]:
        """Walk every node (pre-order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)

    def node_count(self) -> int:
        """Total nodes including the root."""
        return sum(1 for _ in self.iter_nodes())

    def space_utilization(self) -> float:
        """Mean leaf fill fraction (the packed-vs-dynamic metric)."""
        leaves = [n for n in self.iter_nodes() if n.is_leaf]
        if not leaves or self._size == 0:
            return 0.0
        return sum(n.count for n in leaves) / (len(leaves) * self.capacity)

    # -- search ------------------------------------------------------------

    def search(self, query: Rect) -> list[int]:
        """Data ids of all rectangles intersecting ``query``."""
        if query.ndim != self.ndim:
            raise GeometryError("query dimensionality mismatch")
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.rect.intersects(query):
                    if node.is_leaf:
                        out.append(entry.data_id)  # type: ignore[arg-type]
                    else:
                        stack.append(entry.child)  # type: ignore[arg-type]
        return out

    def point_query(self, point: Sequence[float]) -> list[int]:
        """Data ids of all rectangles containing ``point``."""
        return self.search(Rect.from_point(point))

    # -- insertion -----------------------------------------------------------

    def insert(self, rect: Rect, data_id: int) -> None:
        """Insert one rectangle at its Hilbert position."""
        if rect.ndim != self.ndim:
            raise GeometryError("rect dimensionality mismatch")
        key = self.hilbert_key(rect)
        leaf = self._choose_leaf(key)
        pos = bisect.bisect_right(leaf.keys(), key)
        leaf.entries.insert(pos, _HEntry(key=key, rect=rect,
                                         data_id=int(data_id)))
        self._size += 1
        self._refresh_upward(leaf)
        if leaf.count > self.capacity:
            self._handle_overflow(leaf)

    def _choose_leaf(self, key: int) -> _HNode:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_left([e.key for e in node.entries], key)
            if idx == node.count:
                idx -= 1
            node = node.entries[idx].child  # type: ignore[assignment]
        return node

    # -- overflow: rotate into a sibling, else split -------------------------

    def _siblings(self, node: _HNode) -> tuple[Optional[_HNode],
                                               Optional[_HNode]]:
        if node.parent is None:
            return None, None
        idx = node.index_in_parent()
        left = node.parent.entries[idx - 1].child if idx > 0 else None
        right = (node.parent.entries[idx + 1].child
                 if idx + 1 < node.parent.count else None)
        return left, right

    def _handle_overflow(self, node: _HNode) -> None:
        left, right = self._siblings(node)
        if left is not None and left.count < self.capacity:
            self._rotate(node, left, to_left=True)
            return
        if right is not None and right.count < self.capacity:
            self._rotate(node, right, to_left=False)
            return
        self._split(node)

    def _rotate(self, node: _HNode, sibling: _HNode, *, to_left: bool
                ) -> None:
        """Move one boundary entry into an adjacent sibling."""
        if to_left:
            moved = node.entries.pop(0)
            sibling.entries.append(moved)
        else:
            moved = node.entries.pop()
            sibling.entries.insert(0, moved)
        if moved.child is not None:
            moved.child.parent = sibling
        self._refresh_upward(node)
        self._refresh_upward(sibling)

    def _split(self, node: _HNode) -> None:
        half = node.count // 2
        right = _HNode(level=node.level)
        right.entries = node.entries[half:]
        node.entries = node.entries[:half]
        for entry in right.entries:
            if entry.child is not None:
                entry.child.parent = right

        parent = node.parent
        if parent is None:
            new_root = _HNode(level=node.level + 1)
            new_root.entries = [
                _HEntry(key=node.lhv(), rect=node.mbr(), child=node),
                _HEntry(key=right.lhv(), rect=right.mbr(), child=right),
            ]
            node.parent = new_root
            right.parent = new_root
            self._root = new_root
            return

        idx = node.index_in_parent()
        parent.entries[idx] = _HEntry(key=node.lhv(), rect=node.mbr(),
                                      child=node)
        parent.entries.insert(
            idx + 1, _HEntry(key=right.lhv(), rect=right.mbr(), child=right)
        )
        right.parent = parent
        self._refresh_upward(parent)
        if parent.count > self.capacity:
            self._handle_overflow(parent)

    def _refresh_upward(self, node: _HNode) -> None:
        """Recompute (LHV, MBR) along the path to the root."""
        while node.parent is not None:
            idx = node.index_in_parent()
            entry = node.parent.entries[idx]
            entry.key = node.lhv()
            entry.rect = node.mbr()
            node = node.parent

    # -- deletion ------------------------------------------------------------

    def delete(self, rect: Rect, data_id: int) -> bool:
        """Remove one record; returns False when absent."""
        if rect.ndim != self.ndim:
            raise GeometryError("rect dimensionality mismatch")
        key = self.hilbert_key(rect)
        leaf, pos = self._find_record(key, rect, int(data_id))
        if leaf is None:
            return False
        leaf.entries.pop(pos)
        self._size -= 1
        if leaf.entries:
            self._refresh_upward(leaf)
        self._handle_underflow(leaf)
        return True

    def _find_record(self, key: int, rect: Rect, data_id: int
                     ) -> tuple[Optional[_HNode], int]:
        """Locate a record by key (duplicate keys: scan the key run)."""
        node = self._root
        while not node.is_leaf:
            # Duplicate LHVs can spread a key run over siblings; search
            # every child whose key range may contain `key`.
            candidates = [
                e.child for e in node.entries
                if e.key >= key and e.rect.intersects(rect)
            ]
            for child in candidates:
                found, pos = self._search_down(child, key, rect, data_id)
                if found is not None:
                    return found, pos
            return None, -1
        return self._scan_leaf(node, key, rect, data_id)

    def _search_down(self, node: _HNode, key: int, rect: Rect,
                     data_id: int) -> tuple[Optional[_HNode], int]:
        if node.is_leaf:
            return self._scan_leaf(node, key, rect, data_id)
        for entry in node.entries:
            if entry.key >= key and entry.rect.intersects(rect):
                found, pos = self._search_down(entry.child, key, rect,
                                               data_id)
                if found is not None:
                    return found, pos
        return None, -1

    @staticmethod
    def _scan_leaf(leaf: _HNode, key: int, rect: Rect, data_id: int
                   ) -> tuple[Optional[_HNode], int]:
        for i, entry in enumerate(leaf.entries):
            if entry.key == key and entry.data_id == data_id \
                    and entry.rect == rect:
                return leaf, i
        return None, -1

    def _handle_underflow(self, node: _HNode) -> None:
        parent = node.parent
        if parent is None:
            # Shrink the root when it has a single child.
            while not self._root.is_leaf and self._root.count == 1:
                only = self._root.entries[0].child
                assert only is not None
                only.parent = None
                self._root = only
            return
        if node.count >= self.min_entries:
            return
        left, right = self._siblings(node)
        donor = None
        if left is not None and left.count > self.min_entries:
            donor, to_left = left, False
        elif right is not None and right.count > self.min_entries:
            donor, to_left = right, True
        if donor is not None:
            self._rotate(donor, node, to_left=to_left)
            return
        # Merge with a sibling (one must exist unless parent is tiny).
        partner = left if left is not None else right
        if partner is None:
            return
        first, second = (partner, node) if partner is left else (node,
                                                                 partner)
        first.entries.extend(second.entries)
        for entry in second.entries:
            if entry.child is not None:
                entry.child.parent = first
        parent.entries.pop(second.index_in_parent())
        second.parent = None
        if first.entries:
            self._refresh_upward(first)
        self._handle_underflow(parent)

    # -- invariants (used by the test-suite) -----------------------------------

    def validate(self, expected_ids=None) -> None:
        """Check B+-tree + R-tree invariants; raises AssertionError."""
        from collections import Counter

        data: list[tuple[int, int]] = []

        def visit(node: _HNode, is_root: bool) -> None:
            keys = node.keys()
            assert keys == sorted(keys), "entries out of Hilbert order"
            assert node.count <= self.capacity, "overfull node"
            if not is_root:
                assert node.count >= 1, "empty non-root node"
            if node.is_leaf:
                for e in node.entries:
                    assert e.data_id is not None
                    data.append((e.key, e.data_id))
                return
            for e in node.entries:
                assert e.child is not None
                assert e.child.parent is node, "broken parent pointer"
                assert e.child.level == node.level - 1
                assert e.key == e.child.lhv(), "stale LHV"
                assert e.rect == e.child.mbr(), "stale MBR"
                visit(e.child, is_root=False)

        if self._root.count or self._size == 0:
            visit(self._root, is_root=True)
        assert len(data) == self._size, "size mismatch"
        keys = [k for k, _ in data]
        # The leaf sequence is globally ordered by Hilbert key... per leaf;
        # global order follows from per-node order + LHV routing, checked
        # via parent keys above.
        if expected_ids is not None:
            assert Counter(i for _, i in data) == Counter(
                int(i) for i in expected_ids), "data id mismatch"
