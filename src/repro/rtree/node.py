"""In-memory nodes for the dynamic (Guttman) R-tree.

The dynamic tree exists for two reasons: (1) the paper's introduction
motivates packing by contrast with one-at-a-time Guttman insertion — so the
baseline must exist to measure load time, space utilisation and query
quality against; (2) the conclusion proposes dynamic variants on top of
packed trees, which our extension experiments exercise by inserting into a
bulk-loaded tree.

These nodes are plain mutable Python objects; the read-optimised paged
representation used for the paper's experiments lives in
:mod:`repro.rtree.paged`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.geometry import GeometryError, Rect, enclosing_mbr

__all__ = ["RTreeError", "Entry", "Node"]


class RTreeError(RuntimeError):
    """Raised on structural misuse (bad capacities, corrupted links)."""


@dataclass
class Entry:
    """One slot in a node: an MBR plus either a child node or a data id.

    Exactly one of ``child``/``data_id`` is set; leaf entries carry
    ``data_id``, internal entries carry ``child``.
    """

    rect: Rect
    child: Optional["Node"] = None
    data_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.child is None) == (self.data_id is None):
            raise RTreeError(
                "an entry must have exactly one of child / data_id"
            )

    @property
    def is_leaf_entry(self) -> bool:
        return self.data_id is not None


@dataclass
class Node:
    """A mutable R-tree node.

    ``level`` is 0 at the leaves and grows toward the root, matching the
    on-disk :class:`~repro.storage.page.NodePage` convention (note this is
    the reverse of the paper's Figure 1 prose, which numbers the *root* 0;
    leaf-anchored levels stay stable across root splits so they are the
    implementation-friendly choice).
    """

    level: int
    entries: list[Entry] = field(default_factory=list)
    parent: Optional["Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def count(self) -> int:
        return len(self.entries)

    def mbr(self) -> Rect:
        """MBR of all entries (node must be non-empty)."""
        if not self.entries:
            raise RTreeError("empty node has no MBR")
        return enclosing_mbr(e.rect for e in self.entries)

    def add(self, entry: Entry) -> None:
        """Append an entry, wiring the parent pointer for child entries."""
        if entry.child is not None:
            if entry.child.level != self.level - 1:
                raise RTreeError(
                    f"child level {entry.child.level} under node level "
                    f"{self.level}"
                )
            entry.child.parent = self
        elif not self.is_leaf:
            raise RTreeError("data entry added to internal node")
        self.entries.append(entry)

    def remove_child(self, child: "Node") -> Entry:
        """Detach the entry pointing at ``child``."""
        for i, entry in enumerate(self.entries):
            if entry.child is child:
                child.parent = None
                return self.entries.pop(i)
        raise RTreeError("child not found in node")

    def entry_for(self, child: "Node") -> Entry:
        """The entry in this node that points at ``child``."""
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise RTreeError("child not found in node")

    def iter_subtree(self) -> Iterator["Node"]:
        """Pre-order walk of this node and everything below it."""
        yield self
        if not self.is_leaf:
            for entry in self.entries:
                if entry.child is None:  # pragma: no cover - guarded by add()
                    raise RTreeError("internal node holds a data entry")
                yield from entry.child.iter_subtree()

    def validate_shape(self, ndim: int) -> None:
        """Cheap structural checks (full checks in rtree.validate)."""
        for entry in self.entries:
            if entry.rect.ndim != ndim:
                raise GeometryError("entry dimensionality mismatch")
            if self.is_leaf and entry.child is not None:
                raise RTreeError("leaf holds a child pointer")
            if not self.is_leaf and entry.data_id is not None:
                raise RTreeError("internal node holds a data id")
