"""Dynamic R-tree with Guttman insertion and deletion.

This is the structure the paper's introduction contrasts packing against:
building by repeated insertion gives (a) high load time, (b) sub-optimal
space utilisation and (c) poor structure.  Our extension experiments
measure exactly those three claims against the packed trees.

The implementation follows Guttman (1984): ChooseLeaf by least area
enlargement, quadratic (default) or linear node splitting, AdjustTree
upward propagation, and CondenseTree with re-insertion on deletion.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..core.geometry import GeometryError, Rect, RectArray
from .node import Entry, Node, RTreeError
from .split import SplitAlgorithm, make_split

__all__ = ["RTree"]


class RTree:
    """A mutable in-memory R-tree.

    Parameters
    ----------
    ndim:
        Dimensionality of indexed rectangles.
    capacity:
        Maximum entries per node (the paper's ``n``; default 100).
    min_fill:
        Minimum fill fraction in ``(0, 0.5]``; nodes hold at least
        ``max(1, floor(capacity * min_fill))`` entries after deletion.
    split:
        ``"quadratic"`` (default), ``"linear"``, or a
        :class:`~repro.rtree.split.SplitAlgorithm` instance.
    """

    def __init__(self, ndim: int = 2, capacity: int = 100, *,
                 min_fill: float = 0.4,
                 split: str | SplitAlgorithm = "quadratic"):
        if ndim < 1:
            raise GeometryError("ndim must be >= 1")
        if capacity < 2:
            raise RTreeError("capacity must be >= 2")
        if not 0.0 < min_fill <= 0.5:
            raise RTreeError("min_fill must be in (0, 0.5]")
        self.ndim = ndim
        self.capacity = capacity
        self.min_entries = max(1, int(capacity * min_fill))
        self._split = split if isinstance(split, SplitAlgorithm) \
            else make_split(split)
        self._root = Node(level=0)
        self._size = 0

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> Node:
        return self._root

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a root leaf)."""
        return self._root.level + 1

    def is_empty(self) -> bool:
        """True when the tree holds no records."""
        return self._size == 0

    def node_count(self) -> int:
        """Total nodes, including the root."""
        return sum(1 for _ in self._root.iter_subtree())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for n in self._root.iter_subtree() if n.is_leaf)

    def iter_nodes(self) -> Iterator[Node]:
        """Walk every node (pre-order)."""
        return self._root.iter_subtree()

    def iter_level(self, level: int) -> Iterator[Node]:
        """All nodes at a leaf-anchored level (0 = leaves)."""
        for node in self._root.iter_subtree():
            if node.level == level:
                yield node

    def mbr(self) -> Rect:
        """MBR of the whole dataset."""
        if self.is_empty():
            raise RTreeError("empty tree has no MBR")
        return self._root.mbr()

    def space_utilization(self) -> float:
        """Mean leaf fill fraction — the paper's claim (b) metric."""
        leaves = [n for n in self._root.iter_subtree() if n.is_leaf]
        if not leaves or self._size == 0:
            return 0.0
        return sum(n.count for n in leaves) / (len(leaves) * self.capacity)

    # -- queries ------------------------------------------------------------

    def search(self, query: Rect) -> list[int]:
        """Data ids of all rectangles intersecting ``query``."""
        results, _ = self.search_counting(query)
        return results

    def search_counting(self, query: Rect) -> tuple[list[int], int]:
        """Like :meth:`search` but also reports nodes visited.

        Node-visit counts on the in-memory tree correspond to un-buffered
        disk accesses and are the quality metric used when comparing the
        dynamic tree against packed trees without a pager.
        """
        if query.ndim != self.ndim:
            raise GeometryError("query dimensionality mismatch")
        results: list[int] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            for entry in node.entries:
                if entry.rect.intersects(query):
                    if node.is_leaf:
                        results.append(entry.data_id)  # type: ignore[arg-type]
                    else:
                        stack.append(entry.child)  # type: ignore[arg-type]
        return results, visited

    def point_query(self, point: Sequence[float]) -> list[int]:
        """Data ids of all rectangles containing ``point``."""
        return self.search(Rect.from_point(point))

    def count(self, query: Rect) -> int:
        """Number of matches without materialising ids."""
        return len(self.search(query))

    # -- insertion ------------------------------------------------------------

    def insert(self, rect: Rect, data_id: int) -> None:
        """Insert one rectangle with an opaque integer id."""
        if rect.ndim != self.ndim:
            raise GeometryError(
                f"rect has {rect.ndim} dims, tree has {self.ndim}"
            )
        self._insert_entry(Entry(rect=rect, data_id=int(data_id)), level=0)
        self._size += 1

    def extend(self, items: Sequence[tuple[Rect, int]]) -> None:
        """Insert many ``(rect, data_id)`` pairs."""
        for rect, data_id in items:
            self.insert(rect, data_id)

    def insert_many(self, rects: "RectArray",
                    data_ids: Sequence[int]) -> list[tuple[int, Rect]]:
        """Bulk insert from one shared geometry buffer.

        ``rects`` arrives already validated (the :class:`RectArray`
        constructor vectorizes the finiteness and lo<=hi checks), so
        this converts the whole buffer to Python floats in one
        ``tolist`` pass instead of allocating a numpy row view per op —
        the per-op path the streaming-ingest delta replay measured as
        pure overhead.  Returns the inserted ``(data_id, rect)`` pairs
        in insertion order.
        """
        if rects.ndim != self.ndim:
            raise GeometryError(
                f"rects have {rects.ndim} dims, tree has {self.ndim}")
        if len(data_ids) != len(rects):
            raise RTreeError(
                f"{len(data_ids)} data_ids for {len(rects)} rects")
        los = rects.los.tolist()
        his = rects.his.tolist()
        out: list[tuple[int, Rect]] = []
        for lo, hi, data_id in zip(los, his, data_ids):
            rect = Rect(tuple(lo), tuple(hi))
            self._insert_entry(Entry(rect=rect, data_id=int(data_id)),
                               level=0)
            self._size += 1
            out.append((int(data_id), rect))
        return out

    def _insert_entry(self, entry: Entry, level: int) -> None:
        node = self._choose_node(entry.rect, level)
        node.add(entry)
        self._adjust_upward(node)

    def _choose_node(self, rect: Rect, level: int) -> Node:
        """Descend to ``level`` choosing least-enlargement subtrees."""
        node = self._root
        while node.level > level:
            best = min(
                node.entries,
                key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
            )
            # Keep the routing rectangle tight as we commit to this path.
            node = best.child  # type: ignore[assignment]
        return node

    def _adjust_upward(self, node: Node) -> None:
        """Fix MBRs and resolve overflows from ``node`` to the root.

        Overflow handling may recurse (the R*-tree's forced re-insertion
        nests whole insertions), and a nested restructuring can split —
        and thereby detach — a node this walk still holds a reference to.
        Detached nodes are recognised by ``parent is None`` while not
        being the root and are skipped: the nested operation that
        detached them already refreshed every MBR up to the root.
        """
        while True:
            if node.parent is None and node is not self._root:
                break  # detached during nested restructuring
            parent = node.parent
            if node.count > self.capacity:
                # Overflow treatment is a subclass hook: Guttman splits,
                # the R*-tree (rtree.rstar) may force-reinsert first.
                self._handle_overflow(node)
            elif parent is not None:
                parent.entry_for(node).rect = node.mbr()
            if parent is None:
                break
            node = parent

    def _handle_overflow(self, node: Node) -> None:
        """Default overflow treatment: split the node (Guttman)."""
        self._split_node(node)

    def _split_node(self, node: Node) -> None:
        group_a, group_b = self._split.split(node.entries, self.min_entries)
        parent = node.parent
        if parent is None:
            if node is not self._root:
                raise RTreeError("attempted to split a detached node")
            # Root split: the tree grows one level.
            parent = Node(level=node.level + 1)
            self._root = parent
        else:
            parent.remove_child(node)
        # The old node object is dead; empty it so any stale reference a
        # suspended upward walk still holds is recognisably detached.
        node.entries = []

        left = Node(level=node.level)
        right = Node(level=node.level)
        for entry in group_a:
            left.add(entry)
        for entry in group_b:
            right.add(entry)
        parent.add(Entry(rect=left.mbr(), child=left))
        parent.add(Entry(rect=right.mbr(), child=right))

    # -- deletion ------------------------------------------------------------

    def delete(self, rect: Rect, data_id: int) -> bool:
        """Remove one ``(rect, data_id)`` record; returns False if absent."""
        if rect.ndim != self.ndim:
            raise GeometryError("rect dimensionality mismatch")
        leaf, index = self._find_leaf(self._root, rect, int(data_id))
        if leaf is None:
            return False
        leaf.entries.pop(index)
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: Node, rect: Rect, data_id: int
                   ) -> tuple[Node | None, int]:
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.data_id == data_id and entry.rect == rect:
                    return node, i
            return None, -1
        for entry in node.entries:
            if entry.rect.contains_rect(rect):
                found, idx = self._find_leaf(entry.child, rect, data_id)
                if found is not None:
                    return found, idx
        return None, -1

    def _condense(self, node: Node) -> None:
        """Guttman's CondenseTree: prune underfull nodes, re-insert orphans."""
        orphans: list[tuple[Entry, int]] = []  # (entry, level to re-insert at)
        while node.parent is not None:
            parent = node.parent
            if node.count < self.min_entries:
                parent.remove_child(node)
                for entry in node.entries:
                    orphans.append((entry, node.level))
            else:
                parent.entry_for(node).rect = node.mbr()
            node = parent

        # Shrink the root while it is an internal node with a single child.
        while not self._root.is_leaf and self._root.count == 1:
            only = self._root.entries[0].child
            assert only is not None
            only.parent = None
            self._root = only
        if not self._root.is_leaf and self._root.count == 0:
            self._root = Node(level=0)

        # Re-insert orphans highest level first so subtrees land correctly.
        work = list(orphans)
        while work:
            top = max(range(len(work)), key=lambda i: work[i][1])
            entry, level = work.pop(top)
            if level > self._root.level:
                # The tree shrank below the orphan subtree's level; splice
                # its children in instead.
                assert entry.child is not None
                work.extend((sub, level - 1) for sub in entry.child.entries)
                continue
            self._insert_entry(entry, level)

    # -- bulk helpers -----------------------------------------------------------

    @classmethod
    def from_items(cls, items: Sequence[tuple[Rect, int]], *,
                   ndim: int = 2, capacity: int = 100,
                   split: str = "quadratic",
                   progress: Callable[[int], None] | None = None) -> "RTree":
        """Build by repeated insertion (the paper's slow baseline loader)."""
        tree = cls(ndim=ndim, capacity=capacity, split=split)
        for i, (rect, data_id) in enumerate(items):
            tree.insert(rect, data_id)
            if progress is not None and (i + 1) % 10000 == 0:
                progress(i + 1)
        return tree
