"""Analytical query-cost model (Kamel & Faloutsos, CIKM '93).

The paper's secondary metric — the sum of node-MBR areas and perimeters —
is "a good indicator of the number of nodes accessed by a query" because
of a simple geometric identity: a query rectangle whose lower corner is
uniform over the unit space intersects a node MBR with probability equal
to the area of the MBR *dilated* by the query extents (the Minkowski sum),

    P[visit node i]  =  prod_d min(1, ext_i[d] + q[d]).

Summing over nodes gives the expected un-buffered node accesses per query.
At k = 2 with square queries of side q this expands to the familiar

    E[accesses]  =  sum(areas) + (q / 2) * sum(perimeters) + N * q^2,

which is why the paper reports areas for point queries (q = 0) and adds
perimeters for region queries.

These estimators let library users size buffers and choose packing
algorithms without running workloads; the test-suite validates them
against measured accesses on uniform data, and a bench compares the
model's algorithm ranking to the measured ranking on every data family.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.geometry import GeometryError
from .paged import PagedRTree

__all__ = [
    "expected_node_accesses",
    "expected_accesses_by_level",
    "expected_accesses_quadratic",
]


def _query_extents(tree: PagedRTree,
                   query_side: float | Sequence[float]) -> np.ndarray:
    if np.isscalar(query_side):
        q = np.full(tree.ndim, float(query_side))
    else:
        q = np.asarray([float(v) for v in query_side])
    if q.shape != (tree.ndim,):
        raise GeometryError(
            f"query extents {q.shape} do not match tree ndim {tree.ndim}"
        )
    if (q < 0).any():
        raise GeometryError("query extents must be non-negative")
    return q


def expected_accesses_by_level(tree: PagedRTree,
                               query_side: float | Sequence[float]
                               ) -> dict[int, float]:
    """Expected node accesses per level for a uniformly-placed query.

    ``query_side`` is a scalar (square query) or per-dimension extents;
    0 gives the point-query model.  Assumes the data space is the unit
    hyper-cube (all paper datasets are normalised to it) and that queries
    are generated the paper's way: lower corner uniform, upper corner
    clamped at the boundary — the boundary clipping is modelled exactly.
    """
    q = _query_extents(tree, query_side)
    out: dict[int, float] = {}
    for _, node in tree.iter_nodes():
        mbr = node.rects.mbr()
        lo = np.asarray(mbr.lo)
        hi = np.asarray(mbr.hi)
        # Lower corner uniform in [0,1]^k, upper corner clamped at 1 (the
        # paper's workload): the query intersects [lo, hi] iff its corner
        # lies in [lo - q, hi] intersected with [0, 1] per axis.
        p_axis = np.minimum(hi, 1.0) - np.maximum(lo - q, 0.0)
        p = float(np.prod(np.clip(p_axis, 0.0, 1.0)))
        out[node.level] = out.get(node.level, 0.0) + p
    return out


def expected_node_accesses(tree: PagedRTree,
                           query_side: float | Sequence[float]) -> float:
    """Expected total (un-buffered) node accesses per query."""
    return float(sum(expected_accesses_by_level(tree, query_side).values()))


def expected_accesses_quadratic(total_area: float, total_perimeter: float,
                                node_count: int, query_side: float) -> float:
    """The closed-form 2-D expansion from the paper's metric triple.

    ``sum(areas) + (q/2) * sum(perimeters) + N * q**2`` — exactly what the
    paper's area/perimeter tables let a reader compute by hand.  Ignores
    boundary clipping, so it slightly overestimates for large ``q``.
    """
    if query_side < 0:
        raise GeometryError("query side must be non-negative")
    return (total_area
            + (query_side / 2.0) * total_perimeter
            + node_count * query_side ** 2)
