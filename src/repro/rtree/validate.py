"""Structural invariant checking for both tree representations.

The test-suite (including its hypothesis properties) leans on these
checkers: after any build or mutation the tree must satisfy the classic
R-tree invariants.  Violations raise :class:`ValidationError` with a
description of the offending node.

Checked invariants
------------------
1. Every parent entry's rectangle equals (not merely contains) the MBR of
   the child it points to — packed and Guttman-maintained trees both keep
   MBRs tight.
2. All leaves are at level 0 and all root-to-leaf paths have equal length.
3. No node exceeds ``capacity`` entries; dynamic trees also respect the
   minimum fill for non-root nodes.
4. The set of data ids stored at the leaves matches the expected multiset.
5. Page-id graph of a paged tree is a proper tree: every non-root page is
   referenced exactly once.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from .node import Node
from .paged import PagedRTree
from .tree import RTree

__all__ = ["ValidationError", "iter_paged_violations", "validate_paged",
           "validate_dynamic"]


class ValidationError(AssertionError):
    """An R-tree invariant does not hold."""


def iter_paged_violations(tree: PagedRTree,
                          expected_ids: Iterable[int] | None = None,
                          ) -> Iterator[str]:
    """Yield a message per violated invariant of a paged tree, in traversal
    order — the engine behind both :func:`validate_paged` (which raises on
    the first) and ``repro fsck`` (which reports them all).

    Covers MBR containment (parent entries must *equal* child MBRs — packed
    trees keep them tight), level monotonicity, capacity, reference counts
    (every non-root page reachable exactly once), and the leaf id multiset.
    """
    seen_pages: Counter[int] = Counter()
    data_ids: list[int] = []
    root = tree.root_node()
    if root.level != tree.height - 1:
        yield (f"root level {root.level} does not match height "
               f"{tree.height}")

    stack = [(tree.root_page, None)]  # (page, expected mbr or None for root)
    while stack:
        page_id, expected_mbr = stack.pop()
        node = tree.read_node(page_id)
        if node.count > tree.capacity:
            yield (f"page {page_id} holds {node.count} > capacity "
                   f"{tree.capacity}")
        mbr = node.rects.mbr()
        if expected_mbr is not None and mbr != expected_mbr:
            yield (f"page {page_id}: parent entry {expected_mbr} != "
                   f"node MBR {mbr}")
        if node.is_leaf:
            data_ids.extend(int(c) for c in node.children)
        else:
            for i in range(node.count):
                child_page = int(node.children[i])
                first_visit = child_page not in seen_pages
                seen_pages[child_page] += 1
                child = tree.read_node(child_page)
                if child.level != node.level - 1:
                    yield (f"page {child_page} at level {child.level} "
                           f"under level-{node.level} parent")
                if first_visit:
                    stack.append((child_page, node.rects[i]))

    for page_id, refs in sorted(seen_pages.items()):
        if refs != 1:
            yield f"page {page_id} referenced {refs} times"
    if tree.root_page in seen_pages:
        yield "root page referenced by an internal node"

    if len(data_ids) != len(tree):
        yield (f"tree claims {len(tree)} records, leaves hold "
               f"{len(data_ids)}")
    if expected_ids is not None:
        expected = Counter(int(i) for i in expected_ids)
        if Counter(data_ids) != expected:
            yield "leaf data ids do not match expected ids"


def validate_paged(tree: PagedRTree,
                   expected_ids: Iterable[int] | None = None) -> None:
    """Check all invariants of a paged tree; raises on the first violation."""
    for message in iter_paged_violations(tree, expected_ids):
        raise ValidationError(message)


def validate_dynamic(tree: RTree,
                     expected_ids: Iterable[int] | None = None) -> None:
    """Check all invariants of a dynamic tree; raises on the first violation."""
    data_ids: list[int] = []
    root = tree.root

    def visit(node: Node, is_root: bool) -> None:
        node.validate_shape(tree.ndim)
        if node.count > tree.capacity:
            raise ValidationError(
                f"node at level {node.level} holds {node.count} entries"
            )
        if not is_root and node.count < tree.min_entries:
            raise ValidationError(
                f"non-root node at level {node.level} underfull: "
                f"{node.count} < {tree.min_entries}"
            )
        if node.is_leaf:
            data_ids.extend(e.data_id for e in node.entries)
            return
        for entry in node.entries:
            child = entry.child
            assert child is not None
            if child.parent is not node:
                raise ValidationError("broken parent pointer")
            if child.level != node.level - 1:
                raise ValidationError("level discontinuity")
            if entry.rect != child.mbr():
                raise ValidationError(
                    f"stale MBR: entry {entry.rect} vs child {child.mbr()}"
                )
            visit(child, is_root=False)

    if root.count > 0 or len(tree) == 0:
        visit(root, is_root=True)
    if len(data_ids) != len(tree):
        raise ValidationError(
            f"tree claims {len(tree)} records, leaves hold {len(data_ids)}"
        )
    if expected_ids is not None:
        expected = Counter(int(i) for i in expected_ids)
        if Counter(int(i) for i in data_ids) != expected:
            raise ValidationError("leaf data ids do not match expected ids")
