"""k-nearest-neighbour search over paged R-trees.

Not part of the paper's evaluation, but a packing algorithm's quality shows
up in every query type an R-tree serves, and any library a downstream user
would adopt needs kNN.  This is the standard best-first (priority-queue)
algorithm of Hjaltason & Samet: expand the node/object with the smallest
minimum distance to the query point until k objects have surfaced.

Distance accounting runs through the same buffer pool as range queries, so
the packed-vs-packed kNN comparison benchmark reuses the paper's disk-access
metric unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from ..core.geometry import GeometryError
from ..obs import runtime as obs
from .paged import PagedSearcher

__all__ = ["knn"]


def _min_dists(los: np.ndarray, his: np.ndarray, point: np.ndarray
               ) -> np.ndarray:
    """Vectorized MINDIST: Euclidean distance from point to each rect."""
    below = np.maximum(los - point, 0.0)
    above = np.maximum(point - his, 0.0)
    delta = np.maximum(below, above)
    return np.sqrt((delta * delta).sum(axis=1))


def knn(searcher: PagedSearcher, point: Sequence[float], k: int
        ) -> list[tuple[int, float]]:
    """The ``k`` data rectangles nearest to ``point``.

    Returns ``(data_id, distance)`` pairs in non-decreasing distance order.
    Distance is Euclidean point-to-rectangle (zero inside a rectangle).
    Page fetches are charged to the searcher's stats like any query.
    """
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    tree = searcher.tree
    q = np.asarray([float(c) for c in point], dtype=np.float64)
    if q.shape != (tree.ndim,):
        raise GeometryError(
            f"point has {q.shape[0]} dims, tree has {tree.ndim}"
        )

    results: list[tuple[int, float]] = []
    counter = itertools.count()  # tie-breaker: heap never compares payloads
    # Heap entries: (distance, seq, kind, payload); kind 0 = node, 1 = object.
    heap: list[tuple[float, int, int, int]] = [
        (0.0, next(counter), 0, tree.root_page)
    ]
    # The walk span nests the buffer's read/decode spans, so kNN reports
    # the same decode-vs-walk self-time split as region queries.
    with obs.span("query.knn"), obs.span("query.node_walk"):
        while heap and len(results) < k:
            dist, _, kind, payload = heapq.heappop(heap)
            if kind == 1:
                results.append((payload, dist))
                continue
            node = searcher.buffer.get(payload)
            dists = _min_dists(node.rects.los, node.rects.his, q)
            child_kind = 1 if node.is_leaf else 0
            for d, child in zip(dists, node.children):
                heapq.heappush(
                    heap, (float(d), next(counter), child_kind, int(child))
                )
    return results
