"""k-nearest-neighbour search over paged R-trees.

Not part of the paper's evaluation, but a packing algorithm's quality shows
up in every query type an R-tree serves, and any library a downstream user
would adopt needs kNN.  This is the standard best-first (priority-queue)
algorithm of Hjaltason & Samet: expand the node/object with the smallest
minimum distance to the query point until k objects have surfaced.

Distance accounting runs through the same buffer pool as range queries, so
the packed-vs-packed kNN comparison benchmark reuses the paper's disk-access
metric unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Container, Sequence

import numpy as np

from ..core.geometry import GeometryError
from ..obs import runtime as obs
from .paged import PagedSearcher

__all__ = ["knn", "knn_detailed", "KnnResult"]


def _min_dists(los: np.ndarray, his: np.ndarray, point: np.ndarray
               ) -> np.ndarray:
    """Vectorized MINDIST: Euclidean distance from point to each rect."""
    below = np.maximum(los - point, 0.0)
    above = np.maximum(point - his, 0.0)
    delta = np.maximum(below, above)
    return np.sqrt((delta * delta).sum(axis=1))


class KnnResult:
    """Outcome of one (possibly degraded) kNN search.

    Mirrors :class:`~repro.rtree.paged.SearchResult`: ``partial=True``
    means at least one node was skipped (quarantined or unreadable in
    degraded mode), so ``neighbours`` may under-report — the true k-th
    neighbour could have lived in a skipped subtree — but every pair
    returned is a real indexed rectangle at its true distance.
    """

    __slots__ = ("neighbours", "partial", "skipped_subtrees")

    def __init__(self, neighbours: list[tuple[int, float]],
                 partial: bool, skipped_subtrees: int):
        self.neighbours = neighbours
        self.partial = partial
        self.skipped_subtrees = skipped_subtrees


def knn(searcher: PagedSearcher, point: Sequence[float], k: int
        ) -> list[tuple[int, float]]:
    """The ``k`` data rectangles nearest to ``point``.

    Returns ``(data_id, distance)`` pairs in non-decreasing distance order.
    Distance is Euclidean point-to-rectangle (zero inside a rectangle).
    Page fetches are charged to the searcher's stats like any query.
    """
    return knn_detailed(searcher, point, k).neighbours


def knn_detailed(
    searcher: PagedSearcher,
    point: Sequence[float],
    k: int,
    *,
    check: Callable[[], None] | None = None,
    quarantined: Container[int] | None = None,
    degraded: bool = False,
    on_page_error: Callable[[int, Exception], None] | None = None,
    root_page: int | None = None,
) -> KnnResult:
    """kNN with the serving-layer hooks of
    :meth:`~repro.rtree.paged.PagedSearcher.search_detailed`.

    ``check`` runs between heap expansions (cooperative deadline
    cancellation); ``quarantined`` subtrees are skipped without I/O;
    ``degraded=True`` absorbs page failures as skipped subtrees instead
    of failing the query, reporting each through ``on_page_error``;
    ``root_page`` starts the walk at a subtree instead of the tree root
    (scatter-gather dispatch) — the result is then the subtree-local
    top-k, which the gatherer merges.
    """
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    tree = searcher.tree
    q = np.asarray([float(c) for c in point], dtype=np.float64)
    if q.shape != (tree.ndim,):
        raise GeometryError(
            f"point has {q.shape[0]} dims, tree has {tree.ndim}"
        )

    results: list[tuple[int, float]] = []
    skipped = 0
    counter = itertools.count()  # tie-breaker: heap never compares payloads
    # Heap entries: (distance, seq, kind, payload); kind 0 = node, 1 = object.
    heap: list[tuple[float, int, int, int]] = [
        (0.0, next(counter), 0,
         tree.root_page if root_page is None else root_page)
    ]
    # The walk span nests the buffer's read/decode spans, so kNN reports
    # the same decode-vs-walk self-time split as region queries.
    with obs.span("query.knn"), obs.span("query.node_walk"):
        while heap and len(results) < k:
            dist, _, kind, payload = heapq.heappop(heap)
            if kind == 1:
                results.append((payload, dist))
                continue
            if check is not None:
                check()
            if quarantined is not None and payload in quarantined:
                skipped += 1
                continue
            try:
                node = searcher.buffer.get(payload)
            except searcher.DEGRADED_ERRORS as exc:
                if not degraded:
                    raise
                skipped += 1
                if on_page_error is not None:
                    on_page_error(payload, exc)
                continue
            dists = _min_dists(node.rects.los, node.rects.his, q)
            child_kind = 1 if node.is_leaf else 0
            for d, child in zip(dists, node.children):
                heapq.heappush(
                    heap, (float(d), next(counter), child_kind, int(child))
                )
    return KnnResult(results, skipped > 0, skipped)
