"""Bulk loading: packing algorithms -> paged R-trees.

This implements steps 2 and 3 of the paper's General Algorithm: given an
ordering from a :class:`~repro.core.packing.base.PackingAlgorithm`, write
full leaf pages, collect their ``(MBR, page id)`` pairs, and recurse upward
until a single root page remains.

Internal levels are re-ordered with the *same* algorithm by default (the
natural reading of "recursively pack these MBRs"); passing
``reorder_internal=False`` packs upper levels in child-emission order
instead, which is what a strictly streaming implementation would do — the
difference is one of the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometry import GeometryError, RectArray
from ..core.packing.base import PackingAlgorithm, leaf_group_sizes
from ..obs import runtime as obs
from ..storage.counters import IOStats
from ..storage.page import NodePage, encode_node, required_page_size
from ..storage.store import MemoryPageStore, PageStore
from .paged import PagedRTree
from .node import RTreeError
from .tree import RTree

__all__ = ["BulkLoadReport", "bulk_load", "pack_upper_levels",
           "paged_from_dynamic"]


@dataclass(frozen=True)
class BulkLoadReport:
    """What building the tree cost — the paper's claim (a) load-time metric."""

    pages_written: int
    height: int
    leaf_pages: int
    build_io: IOStats


def _write_level(
    rects: RectArray,
    children: np.ndarray,
    level: int,
    store: PageStore,
    page_size: int,
    capacity: int,
) -> tuple[RectArray, np.ndarray]:
    """Pack one level into pages; return (MBRs, page ids) for the next."""
    sizes = leaf_group_sizes(len(rects), capacity)
    page_ids = np.empty(len(sizes), dtype=np.int64)
    offset = 0
    for i, size in enumerate(sizes):
        node = NodePage(
            level=level,
            children=children[offset:offset + size],
            rects=rects[offset:offset + size],
        )
        page_id = store.allocate()
        store.write_page(page_id, encode_node(node, page_size))
        page_ids[i] = page_id
        offset += size
    return rects.group_mbrs(sizes), page_ids


def pack_upper_levels(
    store: PageStore,
    algorithm: PackingAlgorithm,
    capacity: int,
    mbrs: RectArray,
    page_ids: np.ndarray,
    *,
    reorder_internal: bool = True,
    start_level: int = 1,
) -> tuple[int, int]:
    """Pack ``(MBR, page id)`` pairs upward until a single root remains.

    This is steps 2-3 of the paper's General Algorithm above the leaves,
    shared by the serial loader, the external-memory loader and the
    sharded parallel orchestrator so all three produce byte-identical
    internal levels from the same leaf sequence.  Returns
    ``(root_page, height)`` where height counts levels including leaves.
    """
    if len(page_ids) == 1:
        return int(page_ids[0]), start_level
    level = start_level
    level_rects, level_ids = mbrs, np.asarray(page_ids, dtype=np.int64)
    while True:
        if reorder_internal:
            with obs.span("pack.order", algorithm=algorithm.name,
                          level=level, count=len(level_rects)):
                perm = algorithm.order(level_rects, capacity)
                level_rects = level_rects.take(perm)
                level_ids = level_ids[perm]
        with obs.span("bulk.write_level", level=level,
                      count=len(level_rects)):
            next_mbrs, next_ids = _write_level(
                level_rects, level_ids, level, store, store.page_size,
                capacity,
            )
        if len(next_ids) == 1:
            return int(next_ids[0]), level + 1
        level_rects, level_ids = next_mbrs, next_ids
        level += 1


def bulk_load(
    rects: RectArray,
    algorithm: PackingAlgorithm,
    *,
    data_ids: np.ndarray | None = None,
    capacity: int = 100,
    store: PageStore | None = None,
    reorder_internal: bool = True,
) -> tuple[PagedRTree, BulkLoadReport]:
    """Build a packed, paged R-tree.

    Parameters
    ----------
    rects:
        The input rectangles (points are degenerate rectangles).
    algorithm:
        Any packing algorithm; the paper's three live in
        :mod:`repro.core.packing`.
    data_ids:
        Optional int64 ids stored in leaf entries; defaults to positional
        indices ``0..len(rects)-1``.
    capacity:
        Entries per node, the paper's ``n`` (default 100).
    store:
        Destination page store; a fresh :class:`MemoryPageStore` with the
        right page size is created if omitted.
    reorder_internal:
        Re-apply ``algorithm`` at internal levels (default, the paper's
        reading) or keep child-emission order.

    Returns
    -------
    ``(tree, report)`` where ``report`` records pages written and build I/O.
    """
    if len(rects) == 0:
        raise GeometryError("cannot bulk-load zero rectangles")
    if capacity < 2:
        raise RTreeError("capacity must be >= 2")
    if data_ids is None:
        ids = np.arange(len(rects), dtype=np.int64)
    else:
        ids = np.asarray(data_ids, dtype=np.int64)
        if ids.shape != (len(rects),):
            raise RTreeError(
                f"data_ids shape {ids.shape} does not match {len(rects)} rects"
            )

    page_size = required_page_size(capacity, rects.ndim)
    if store is None:
        store = MemoryPageStore(page_size)
    elif store.payload_size < page_size:
        # payload_size < page_size when the store reserves trailer bytes
        # for checksums; entries must never spill into that region.
        raise RTreeError(
            f"store payload size {store.payload_size} cannot hold "
            f"{capacity} {rects.ndim}-d entries (need {page_size})"
        )
    build_io = store.stats.snapshot()

    with obs.span("bulk.load", algorithm=algorithm.name, size=len(rects),
                  capacity=capacity):
        with obs.span("pack.order", algorithm=algorithm.name,
                      level=0, count=len(rects)):
            perm = algorithm.order(rects, capacity)
            leaf_rects = rects.take(perm)
            leaf_ids = ids[perm]
        with obs.span("bulk.write_level", level=0, count=len(leaf_rects)):
            mbrs, page_ids = _write_level(
                leaf_rects, leaf_ids, 0, store, store.page_size, capacity
            )
        root_page, height = pack_upper_levels(
            store, algorithm, capacity, mbrs, page_ids,
            reorder_internal=reorder_internal,
        )

    io_delta = IOStats(
        disk_reads=store.stats.disk_reads - build_io.disk_reads,
        disk_writes=store.stats.disk_writes - build_io.disk_writes,
    )
    tree = PagedRTree(
        store,
        root_page,
        height=height,
        ndim=rects.ndim,
        capacity=capacity,
        size=len(rects),
    )
    # Durable stores get the tree header committed into their superblock:
    # the atomic point after which a reopened file is a complete tree.
    tree.commit_meta()
    report = BulkLoadReport(
        pages_written=io_delta.disk_writes,
        height=tree.height,
        leaf_pages=int(np.ceil(len(rects) / capacity)),
        build_io=io_delta,
    )
    if obs.enabled():
        obs.record_iostats(io_delta, "build.io", algorithm=algorithm.name)
        obs.set_gauge("tree.height", tree.height, algorithm=algorithm.name)
        obs.set_gauge("tree.pages", report.pages_written,
                      algorithm=algorithm.name)
    return tree, report


def paged_from_dynamic(tree: RTree, store: PageStore | None = None
                       ) -> PagedRTree:
    """Serialise a dynamic (Guttman) tree into the paged representation.

    This lets the experiment harness measure a dynamically-built tree with
    exactly the same buffer-pool instrumentation as the packed trees —
    needed for the packed-vs-inserted extension experiments.
    """
    if tree.is_empty():
        raise RTreeError("cannot serialise an empty tree")
    page_size = required_page_size(tree.capacity, tree.ndim)
    if store is None:
        store = MemoryPageStore(page_size)
    elif store.payload_size < page_size:
        raise RTreeError(
            f"store payload size {store.payload_size} cannot hold "
            f"{tree.capacity} {tree.ndim}-d entries (need {page_size})"
        )

    # Allocate pages in BFS order so sibling locality is preserved, then
    # write children before parents need their ids (two passes).
    order = list(tree.iter_nodes())
    page_of = {id(node): store.allocate() for node in order}
    for node in order:
        if node.is_leaf:
            children = np.array(
                [e.data_id for e in node.entries], dtype=np.int64
            )
        else:
            children = np.array(
                [page_of[id(e.child)] for e in node.entries], dtype=np.int64
            )
        rects = RectArray.from_rects(e.rect for e in node.entries)
        page = NodePage(level=node.level, children=children, rects=rects)
        store.write_page(page_of[id(node)], encode_node(page, store.page_size))

    paged = PagedRTree(
        store,
        page_of[id(tree.root)],
        height=tree.height,
        ndim=tree.ndim,
        capacity=tree.capacity,
        size=len(tree),
    )
    paged.commit_meta()
    return paged
