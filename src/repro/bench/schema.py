"""The ``repro-bench-v1`` document schema and its validator.

A bench document is one committed JSON file per host class
(``BENCH_linux-x86_64.json``) holding the full scenario suite of one
``repro bench`` invocation.  The schema is versioned and validated on
every load so a malformed or drifted baseline fails loudly in CI rather
than silently gating nothing.

Document layout::

    {
      "format":      "repro-bench-v1",
      "created_utc": "2026-08-07T12:00:00+00:00",
      "profile":     "quick" | "full",
      "host_class":  "linux-x86_64",
      "environment": {git_sha, python, implementation, platform,
                      machine, cpu_count},
      "config":      {...BenchConfig fields...},
      "scenarios": {
        "<name>": {
          "description":   "...",
          "ops":           2000,
          "elapsed_s":     1.23,
          "queries_per_s": 1626.0,
          "mean_accesses": 4.1,
          "latency_s":     {"mean", "p50", "p95", "p99", "max"},
          "io":            {"pages_read", "bytes_read",
                            "buffer_hits", "buffer_misses"},
          "self_time_s":   {"read", "decode", "walk", "other"},
          "tolerance":     {"queries_per_s_min_ratio",
                            "p99_max_ratio", "pages_read_rel"}
        }, ...
      }
    }

Tolerance bands are carried *in the baseline*: a diff run reads the
baseline's bands, so loosening a band is a reviewable change to the
committed file, not a CI knob.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone

from ..obs.manifest import git_sha

__all__ = [
    "BENCH_FORMAT",
    "BenchSchemaError",
    "host_class",
    "default_bench_name",
    "environment_fingerprint",
    "validate_bench",
    "load_bench",
    "write_bench",
]

BENCH_FORMAT = "repro-bench-v1"

#: Default tolerance bands: generous on wall-clock (CI hosts differ by
#: several x), tight on the deterministic I/O counts.
DEFAULT_TOLERANCE = {
    "queries_per_s_min_ratio": 0.1,
    "p99_max_ratio": 10.0,
    "pages_read_rel": 0.01,
}

#: Required percentile keys of every scenario's ``latency_s`` block.
LATENCY_KEYS = ("mean", "p50", "p95", "p99", "max")

#: Required keys of every scenario's ``io`` block.
IO_KEYS = ("pages_read", "bytes_read", "buffer_hits", "buffer_misses")

#: Required keys of every scenario's ``self_time_s`` block.
SELF_TIME_KEYS = ("read", "decode", "walk", "other")


class BenchSchemaError(ValueError):
    """A bench document failed schema validation."""


def host_class() -> str:
    """Coarse host bucket the baseline file is keyed by.

    OS plus CPU architecture (``linux-x86_64``): fine enough that the
    committed baseline and the CI runner land in the same bucket,
    coarse enough that every x86-64 Linux box shares one file.
    """
    machine = platform.machine().lower() or "unknown"
    return f"{sys.platform}-{machine}"


def default_bench_name() -> str:
    """``BENCH_<host-class>.json`` — the committed baseline's name."""
    return f"BENCH_{host_class()}.json"


def environment_fingerprint() -> dict:
    """Where these numbers came from: code revision + interpreter + box."""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def created_utc_now() -> str:
    """ISO-8601 UTC timestamp for a freshly produced document."""
    return datetime.now(timezone.utc).isoformat()


def _require(block: dict, keys, where: str, errors: list[str]) -> None:
    for key in keys:
        if key not in block:
            errors.append(f"{where}: missing key {key!r}")


def _number(block: dict, key: str, where: str, errors: list[str],
            minimum: float | None = 0.0) -> None:
    value = block.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        errors.append(f"{where}.{key}: not a number ({value!r})")
        return
    if minimum is not None and value < minimum:
        errors.append(f"{where}.{key}: {value} < {minimum}")


def validate_bench(doc: object) -> list[str]:
    """Every schema violation in ``doc`` as human-readable strings.

    An empty list means the document is a valid ``repro-bench-v1``
    record; :func:`load_bench` raises :class:`BenchSchemaError` on any
    finding.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("format") != BENCH_FORMAT:
        errors.append(
            f"format is {doc.get('format')!r}, expected {BENCH_FORMAT!r}"
        )
    _require(doc, ("created_utc", "profile", "host_class", "environment",
                   "config", "scenarios"), "document", errors)
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        errors.append("scenarios: missing, empty, or not an object")
        return errors
    for name, sc in sorted(scenarios.items()):
        where = f"scenarios.{name}"
        if not isinstance(sc, dict):
            errors.append(f"{where}: not an object")
            continue
        _require(sc, ("description", "ops", "elapsed_s", "queries_per_s",
                      "latency_s", "io", "self_time_s", "tolerance"),
                 where, errors)
        if "ops" in sc and (not isinstance(sc["ops"], int)
                            or sc["ops"] < 1):
            errors.append(f"{where}.ops: {sc['ops']!r} is not a "
                          "positive integer")
        if "queries_per_s" in sc:
            _number(sc, "queries_per_s", where, errors)
        for block_name, keys in (("latency_s", LATENCY_KEYS),
                                 ("io", IO_KEYS),
                                 ("self_time_s", SELF_TIME_KEYS)):
            block = sc.get(block_name)
            if block is None:
                continue
            if not isinstance(block, dict):
                errors.append(f"{where}.{block_name}: not an object")
                continue
            _require(block, keys, f"{where}.{block_name}", errors)
            for key in keys:
                if key in block:
                    _number(block, key, f"{where}.{block_name}", errors)
        tolerance = sc.get("tolerance")
        if tolerance is not None and not isinstance(tolerance, dict):
            errors.append(f"{where}.tolerance: not an object")
    return errors


def load_bench(path: str | os.PathLike) -> dict:
    """Read and validate a bench document; raises on schema violations."""
    with open(os.fspath(path)) as f:
        doc = json.load(f)
    errors = validate_bench(doc)
    if errors:
        raise BenchSchemaError(
            f"{path}: invalid {BENCH_FORMAT} document:\n  "
            + "\n  ".join(errors)
        )
    return doc


def write_bench(doc: dict, path: str | os.PathLike) -> str:
    """Validate and write a bench document; returns the path."""
    errors = validate_bench(doc)
    if errors:
        raise BenchSchemaError(
            "refusing to write invalid bench document:\n  "
            + "\n  ".join(errors)
        )
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
