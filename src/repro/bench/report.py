"""``repro report``: re-render, diff and prune stored run artefacts.

``results/runs/`` is the lab notebook: every profile, fsck, lint, build,
serve and bench invocation files a manifest there.  This module turns
that directory back into reviewable output without re-running anything:

* :func:`list_runs_table` — one row per run stem with its artefacts;
* :func:`render_manifest_text` — the timing-breakdown table, metric
  snapshot and SLO verdicts of any stored manifest;
* :func:`diff_tables` — a labelled delta table between two manifests or
  two bench documents, with threshold-crossing highlights (bench
  tolerance bands gate CI; manifest diffs highlight ±25% moves);
* :func:`prune_runs` — retention (``--prune --keep N``) that removes
  whole run stems, never tearing one run's files apart.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

from ..experiments.report import Table
from ..obs.export import RUN_EXTENSIONS
from ..obs.manifest import MANIFEST_FORMAT, RunManifest, load_manifest
from ..obs.spans import PHASES
from .schema import BENCH_FORMAT, BenchSchemaError, load_bench

__all__ = [
    "list_runs_table",
    "resolve_run_manifest",
    "render_manifest_text",
    "diff_tables",
    "prune_runs",
]

#: Manifest-diff highlight threshold: relative moves beyond this get a
#: ``!`` flag (informational — only bench tolerance bands gate CI).
MANIFEST_HIGHLIGHT_REL = 0.25


def _stem_of(filename: str) -> str | None:
    """The run stem of an artefact filename, or ``None`` if unrecognised.

    Longest-extension-first so ``x.trace.jsonl`` maps to stem ``x``,
    not ``x.trace``.
    """
    for ext in sorted(RUN_EXTENSIONS, key=len, reverse=True):
        if filename.endswith(ext):
            return filename[: -len(ext)]
    return None


def _runs_by_stem(run_dir: str | os.PathLike) -> dict[str, list[str]]:
    """Map ``stem -> [artefact paths]`` for every run in the directory."""
    run_dir = os.fspath(run_dir)
    groups: dict[str, list[str]] = {}
    if not os.path.isdir(run_dir):
        return groups
    for name in sorted(os.listdir(run_dir)):
        stem = _stem_of(name)
        if stem is not None:
            groups.setdefault(stem, []).append(
                os.path.join(run_dir, name)
            )
    return groups


def list_runs_table(run_dir: str | os.PathLike) -> Table:
    """One row per run stem: experiment, creation time, artefact kinds."""
    table = Table(
        title=f"runs in {os.fspath(run_dir)}",
        columns=("stem", "experiment", "created_utc", "duration_s",
                 "artefacts"),
    )
    for stem, paths in sorted(_runs_by_stem(run_dir).items()):
        manifest_path = os.path.join(os.fspath(run_dir), f"{stem}.json")
        experiment, created, duration = "?", "?", float("nan")
        if manifest_path in paths:
            try:
                manifest = load_manifest(manifest_path)
                experiment = manifest.experiment
                created = manifest.created_utc
                duration = manifest.duration_s
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                experiment = "(unreadable)"
        kinds = ",".join(sorted(
            os.path.basename(p)[len(stem):].lstrip(".") for p in paths
        ))
        table.add_row(stem, experiment, created, duration, kinds)
    if not table.rows:
        table.notes.append("no runs found")
    return table


def resolve_run_manifest(run_dir: str | os.PathLike,
                         target: str) -> str:
    """The manifest path for a run named by stem or by direct path."""
    if os.path.isfile(target):
        return target
    run_dir = os.fspath(run_dir)
    for candidate in (os.path.join(run_dir, target),
                      os.path.join(run_dir, f"{target}.json")):
        if os.path.isfile(candidate):
            return candidate
    known = ", ".join(sorted(_runs_by_stem(run_dir))) or "(none)"
    raise FileNotFoundError(
        f"no run {target!r} under {run_dir}; known stems: {known}"
    )


# -- manifest re-rendering ---------------------------------------------------


def _phases_table(manifest: RunManifest) -> Table:
    """The stored per-phase/per-span timings as a breakdown table."""
    table = Table(
        title="Phase timing breakdown (from stored manifest)",
        columns=("phase / span", "count", "wall s", "cpu s", "% wall"),
    )
    phases = manifest.phases or {}
    total = sum(p.get("wall_s", 0.0) for p in phases.values())
    table.add_section("phases (self time)")
    ordered = [p for p in PHASES if p in phases]
    ordered += sorted(set(phases) - set(ordered))
    for phase in ordered:
        p = phases[phase]
        pct = 100.0 * p.get("wall_s", 0.0) / total if total else 0.0
        table.add_row(phase, int(p.get("count", 0)),
                      round(p.get("wall_s", 0.0), 4),
                      round(p.get("cpu_s", 0.0), 4), f"{pct:.1f}%")
    spans = manifest.spans or {}
    table.add_section("spans (inclusive time)")
    for name in sorted(spans, key=lambda n: -spans[n].get("wall_s", 0.0)):
        s = spans[name]
        pct = 100.0 * s.get("wall_s", 0.0) / total if total else 0.0
        table.add_row(f"{name} [{s.get('phase', '?')}]",
                      int(s.get("count", 0)),
                      round(s.get("wall_s", 0.0), 4),
                      round(s.get("cpu_s", 0.0), 4), f"{pct:.1f}%")
    return table


def _flatten_metrics(metrics: dict) -> dict[str, object]:
    """Manifest metrics as flat ``name{labels}[.stat] -> value`` pairs."""
    flat: dict[str, object] = {}
    for name, entries in sorted((metrics or {}).items()):
        for entry in entries:
            labels = entry.get("labels") or {}
            suffix = ("{" + ",".join(f"{k}={v}" for k, v in
                                     sorted(labels.items())) + "}"
                      if labels else "")
            key = f"{name}{suffix}"
            value = entry.get("value")
            if isinstance(value, dict):  # histogram summary
                for stat, v in sorted(value.items()):
                    flat[f"{key}.{stat}"] = v
            else:
                flat[key] = value
    return flat


def _metrics_table(manifest: RunManifest) -> Table:
    """The stored metric snapshot as a two-column table."""
    table = Table(title="Metrics", columns=("metric", "value"))
    for key, value in _flatten_metrics(manifest.metrics).items():
        table.add_row(key, value)
    if not table.rows:
        table.notes.append("no metrics recorded")
    return table


def _slo_lines(manifest: RunManifest) -> list[str]:
    """SLO verdict lines found anywhere in the manifest's extras."""
    lines: list[str] = []

    def _walk(prefix: str, block: object) -> None:
        if not isinstance(block, dict):
            return
        slo = block.get("slo")
        if isinstance(slo, dict) and "ok" in slo:
            verdict = "OK" if slo.get("ok") else "VIOLATED"
            detail = "; ".join(slo.get("violations") or ()) or (
                f"p50={slo.get('p50')} p99={slo.get('p99')} "
                f"over {slo.get('count')} sample(s)"
            )
            lines.append(f"slo [{prefix}]: {verdict} — {detail}")
        for key, value in block.items():
            if isinstance(value, dict) and key != "slo":
                _walk(f"{prefix}.{key}" if prefix else key, value)

    _walk("", manifest.extra or {})
    return lines


def render_manifest_text(manifest: RunManifest) -> str:
    """Re-render a stored manifest: header, timings, metrics, verdicts."""
    lines = [
        f"experiment:  {manifest.experiment}",
        f"created:     {manifest.created_utc}",
        f"git sha:     {manifest.git_sha or '(unknown)'}",
        f"duration:    {manifest.duration_s:.3f}s",
    ]
    if manifest.argv:
        lines.append(f"argv:        {' '.join(manifest.argv)}")
    for key, value in sorted((manifest.outputs or {}).items()):
        lines.append(f"output:      {key} = {value}")
    blocks = ["\n".join(lines)]
    if manifest.phases or manifest.spans:
        blocks.append(_phases_table(manifest).render())
    if manifest.metrics:
        blocks.append(_metrics_table(manifest).render())
    slo = _slo_lines(manifest)
    if slo:
        blocks.append("\n".join(slo))
    for key, value in sorted((manifest.extra or {}).items()):
        blocks.append(
            f"extra[{key}]:\n"
            + json.dumps(value, indent=2, sort_keys=True)
        )
    return "\n\n".join(blocks) + "\n"


# -- diffing -----------------------------------------------------------------


def _fmt(value: object) -> object:
    """Round floats for diff-table cells; pass other values through."""
    if isinstance(value, float):
        return round(value, 6)
    return value


def _delta_cells(a: object, b: object) -> tuple[object, str, float | None]:
    """``(delta, pct_string, rel_change)`` for two metric values."""
    if (isinstance(a, (int, float)) and isinstance(b, (int, float))
            and not isinstance(a, bool) and not isinstance(b, bool)):
        delta = b - a
        if a:
            rel = delta / a
            return _fmt(delta), f"{100.0 * rel:+.1f}%", rel
        return _fmt(delta), "n/a", None
    return "", "n/a", None


def _diff_bench(a: dict, b: dict) -> tuple[Table, list[str]]:
    """Scenario-by-scenario delta table; crossings per A's bands."""
    table = Table(
        title="bench diff (A = baseline, B = current)",
        columns=("scenario", "metric", "A", "B", "delta", "pct", "flag"),
    )
    crossings: list[str] = []
    comparable = (a.get("profile") == b.get("profile")
                  and a.get("config") == b.get("config"))
    if not comparable:
        table.notes.append(
            "profiles/configs differ — deltas are informational only, "
            "tolerance bands not applied"
        )
    metrics = (
        ("queries_per_s", ("queries_per_s",)),
        ("latency p50 s", ("latency_s", "p50")),
        ("latency p99 s", ("latency_s", "p99")),
        ("pages_read", ("io", "pages_read")),
        ("decode self s", ("self_time_s", "decode")),
        ("walk self s", ("self_time_s", "walk")),
    )

    def _get(doc: dict, scenario: str, path: tuple) -> object:
        node: object = doc["scenarios"].get(scenario, {})
        for key in path:
            if not isinstance(node, dict):
                return None
            node = node.get(key)
        return node

    names = sorted(set(a.get("scenarios", {})) | set(b.get("scenarios", {})))
    for name in names:
        in_a = name in a.get("scenarios", {})
        in_b = name in b.get("scenarios", {})
        if not (in_a and in_b):
            table.add_row(name, "(scenario)",
                          "present" if in_a else "missing",
                          "present" if in_b else "missing", "", "n/a",
                          "!")
            if comparable:
                crossings.append(f"{name}: scenario "
                                 + ("missing from B" if in_a
                                    else "new in B"))
            continue
        bands = a["scenarios"][name].get("tolerance") or {}
        for label, path in metrics:
            va, vb = _get(a, name, path), _get(b, name, path)
            delta, pct, rel = _delta_cells(va, vb)
            flag = ""
            if comparable and isinstance(va, (int, float)) \
                    and isinstance(vb, (int, float)):
                if path == ("queries_per_s",):
                    floor = bands.get("queries_per_s_min_ratio")
                    if floor is not None and vb < va * floor:
                        flag = "!"
                        crossings.append(
                            f"{name}: queries_per_s {vb:.1f} below "
                            f"band {va:.1f} x {floor}"
                        )
                elif path == ("latency_s", "p99"):
                    ceil = bands.get("p99_max_ratio")
                    if ceil is not None and va > 0 and vb > va * ceil:
                        flag = "!"
                        crossings.append(
                            f"{name}: p99 {vb:.6f}s above band "
                            f"{va:.6f}s x {ceil}"
                        )
                elif path == ("io", "pages_read"):
                    tol = bands.get("pages_read_rel")
                    if (tol is not None and rel is not None
                            and abs(rel) > tol):
                        flag = "!"
                        crossings.append(
                            f"{name}: pages_read moved {rel:+.2%} "
                            f"(band ±{tol:.0%}) — access counts are "
                            "deterministic; this is a real change"
                        )
            table.add_row(name, label, _fmt(va), _fmt(vb), delta, pct,
                          flag)
    return table, crossings


def _diff_manifests(a: RunManifest, b: RunManifest
                    ) -> tuple[Table, list[str]]:
    """Phase/metric delta table between two stored run manifests."""
    table = Table(
        title=(f"manifest diff (A = {a.experiment}@{a.created_utc}, "
               f"B = {b.experiment}@{b.created_utc})"),
        columns=("metric", "A", "B", "delta", "pct", "flag"),
    )
    crossings: list[str] = []
    rows: list[tuple[str, object, object]] = [
        ("duration_s", a.duration_s, b.duration_s)
    ]
    phase_names = sorted(set(a.phases or {}) | set(b.phases or {}))
    for phase in phase_names:
        rows.append((
            f"phase.{phase}.wall_s",
            (a.phases or {}).get(phase, {}).get("wall_s"),
            (b.phases or {}).get(phase, {}).get("wall_s"),
        ))
    flat_a = _flatten_metrics(a.metrics)
    flat_b = _flatten_metrics(b.metrics)
    for key in sorted(set(flat_a) | set(flat_b)):
        rows.append((key, flat_a.get(key), flat_b.get(key)))
    for key, va, vb in rows:
        delta, pct, rel = _delta_cells(va, vb)
        flag = "!" if (rel is not None
                       and abs(rel) >= MANIFEST_HIGHLIGHT_REL) else ""
        table.add_row(key, _fmt(va), _fmt(vb), delta, pct, flag)
    table.notes.append(
        f"'!' flags relative moves beyond "
        f"{MANIFEST_HIGHLIGHT_REL:.0%} (informational)"
    )
    return table, crossings


def _load_doc(path: str) -> tuple[str, object]:
    """Classify and load a diffable document by its ``format`` key."""
    with open(path) as f:
        raw = json.load(f)
    fmt = raw.get("format") if isinstance(raw, dict) else None
    if fmt == BENCH_FORMAT:
        return "bench", load_bench(path)
    if fmt == MANIFEST_FORMAT:
        return "manifest", RunManifest.from_dict(raw)
    raise BenchSchemaError(
        f"{path}: format {fmt!r} is neither {BENCH_FORMAT!r} nor "
        f"{MANIFEST_FORMAT!r}"
    )


def diff_tables(path_a: str, path_b: str) -> tuple[Table, list[str]]:
    """Diff two stored documents (both manifests, or both bench docs).

    Returns the rendered delta :class:`Table` and the list of tolerance
    crossings — non-empty only for bench documents whose baseline bands
    were exceeded; CI turns a non-empty list into a failing exit code.
    """
    kind_a, doc_a = _load_doc(path_a)
    kind_b, doc_b = _load_doc(path_b)
    if kind_a != kind_b:
        raise BenchSchemaError(
            f"cannot diff a {kind_a} against a {kind_b} "
            f"({path_a} vs {path_b})"
        )
    if kind_a == "bench":
        return _diff_bench(doc_a, doc_b)
    return _diff_manifests(doc_a, doc_b)


# -- retention ---------------------------------------------------------------


def prune_runs(run_dir: str | os.PathLike, keep: int,
               dry_run: bool = False) -> list[str]:
    """Remove the oldest run stems beyond ``keep``; returns removed paths.

    Whole stems are removed atomically-per-run (every artefact sharing
    the stem goes together), newest-first survival by file modification
    time, so a run's manifest can never outlive its trace or vice versa.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    groups = _runs_by_stem(run_dir)

    def _newest(paths: Sequence[str]) -> float:
        return max(os.path.getmtime(p) for p in paths)

    ordered = sorted(groups.items(), key=lambda kv: _newest(kv[1]),
                     reverse=True)
    removed: list[str] = []
    for _, paths in ordered[keep:]:
        for path in paths:
            if not dry_run:
                os.remove(path)
            removed.append(path)
    return sorted(removed)
