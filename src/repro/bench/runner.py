"""Run the scenario suite and produce the bench document + run artefacts.

One :func:`run_bench` invocation:

1. builds the suite's tree in a throwaway work directory and runs every
   scenario in pinned order, each under its own span tracer;
2. assembles the ``repro-bench-v1`` document (scenario metrics plus the
   environment fingerprint and default tolerance bands) and writes it to
   ``BENCH_<host-class>.json`` (or ``--out``);
3. files the run under ``results/runs/`` like any other experiment —
   a run manifest, the merged span trace (``<stem>.trace.jsonl``, ready
   for ``repro report --chrome-trace/--flamegraph``), and a copy of the
   bench document (``<stem>.bench.json``) — so every benchmark is
   re-renderable and diffable after the fact.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Sequence

from .. import obs
from ..obs.spans import Tracer
from .scenarios import (
    EXTRA_SCENARIOS,
    SCENARIOS,
    BenchConfig,
    ScenarioResult,
    SuiteContext,
)
from .schema import (
    BENCH_FORMAT,
    DEFAULT_TOLERANCE,
    created_utc_now,
    default_bench_name,
    environment_fingerprint,
    host_class,
    write_bench,
)

__all__ = ["run_bench", "merge_tracers", "bench_doc_from_results"]


def merge_tracers(tracers: Sequence[Tracer]) -> Tracer:
    """One tracer holding every input tracer's spans, indices re-based.

    The scenarios run sequentially on one clock, so re-basing each
    tracer's start-order indices past the previous one's reconstructs a
    stream with single-tracer invariants — summaries, self-times and
    stack reconstruction all stay exact.
    """
    merged = Tracer()
    base = 0
    for tracer in tracers:
        top = base
        for span in sorted(tracer.spans, key=lambda s: s.index):
            span.index += base
            top = max(top, span.index)
            merged.spans.append(span)
        base = top + 1
    merged._next_index = base
    return merged


def bench_doc_from_results(config: BenchConfig,
                           results: Sequence[ScenarioResult],
                           tolerance: dict | None = None) -> dict:
    """Assemble (and normalise) the bench document for a finished suite."""
    bands = dict(DEFAULT_TOLERANCE if tolerance is None else tolerance)
    doc = {
        "format": BENCH_FORMAT,
        "created_utc": created_utc_now(),
        "profile": config.profile,
        "host_class": host_class(),
        "environment": environment_fingerprint(),
        "config": config.as_dict(),
        "scenarios": {
            result.name: {**result.as_dict(), "tolerance": dict(bands)}
            for result in results
        },
    }
    # A JSON round-trip so the in-memory doc equals the reloaded file.
    return json.loads(json.dumps(doc))


def run_bench(config: BenchConfig, *, out_path: str | None = None,
              run_dir: str | None = None, write_run_files: bool = True,
              argv: Sequence[str] | None = None,
              scenario_names: Sequence[str] | None = None,
              serve_workers: int = 0,
              progress=None) -> tuple[dict, dict[str, str]]:
    """Run the suite; returns ``(bench_doc, written_paths)``.

    ``scenario_names`` filters the suite (the ``build`` scenario is
    always included — every query scenario needs its tree).
    ``serve_workers > 0`` opts in to the ``serve_pool`` scenario with
    that many worker processes; it is appended *after* the pinned suite
    so the baseline entries keep their like-for-like order.
    ``progress`` is an optional ``callable(str)`` for per-scenario CLI
    narration; ``write_run_files=False`` skips the ``results/runs/``
    artefacts (used by tests that only want the document).
    """
    available = {**SCENARIOS, **EXTRA_SCENARIOS}
    requested = None if scenario_names is None else set(scenario_names)
    names = list(SCENARIOS) if requested is None else [
        n for n in SCENARIOS if n in requested or n == "build"
    ]
    if serve_workers > 0 or (requested and "serve_pool" in requested):
        names.append("serve_pool")
    unknown = (requested or set()) - set(available)
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {sorted(unknown)}; "
            f"available: {', '.join(available)}"
        )
    written: dict[str, str] = {}
    start = time.time()
    results: list[ScenarioResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
        ctx = SuiteContext(config=config, workdir=workdir,
                           serve_workers=max(serve_workers, 0))
        for name in names:
            if progress is not None:
                progress(f"[bench] {name} ...")
            result = available[name](ctx)
            results.append(result)
            if progress is not None:
                progress(
                    f"[bench] {name}: {result.ops} op(s) in "
                    f"{result.elapsed_s:.3f}s "
                    f"({result.ops / result.elapsed_s:.1f}/s, "
                    f"{result.pages_read} pages read)"
                )
        if ctx.tree is not None:
            ctx.tree.store.close()
    duration = time.time() - start

    doc = bench_doc_from_results(config, results)
    target = out_path if out_path is not None else default_bench_name()
    written["bench"] = write_bench(doc, target)

    if write_run_files:
        merged = merge_tracers([r.tracer for r in results])
        out_dir = run_dir if run_dir is not None else obs.DEFAULT_RUN_DIR
        manifest = obs.RunManifest.collect(
            "bench", config=config.as_dict(),
            argv=list(argv) if argv else [], duration_s=duration,
            tracer=merged, extra={"bench": doc},
        )
        stem = obs.unique_run_stem(manifest, out_dir)
        written["trace_jsonl"] = obs.write_trace_jsonl(
            merged, os.path.join(out_dir, f"{stem}.trace.jsonl")
        )
        written["bench_copy"] = write_bench(
            doc, os.path.join(out_dir, f"{stem}.bench.json")
        )
        manifest.outputs.update({
            "trace_jsonl": written["trace_jsonl"],
            "bench_json": written["bench"],
        })
        written["manifest"] = obs.write_manifest(manifest, out_dir,
                                                 stem=stem)
    return doc, written
