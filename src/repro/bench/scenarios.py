"""The pinned benchmark scenario suite.

Each scenario builds or queries one deterministic tree (uniform points,
fixed seed) and reports the same shape of result: operation count,
wall-clock throughput, a latency distribution, I/O counts from the
searcher's own :class:`~repro.storage.counters.IOStats`, and
read/decode/walk self-time from the span tracer.  The suite is ordered:
``build`` constructs the durable tree every later scenario queries, and
``serve_roundtrip`` runs last because attaching the query server wires
a circuit breaker onto the shared store.

Scenario list (the committed BENCH baseline carries one entry each):

``build``
    Durable STR bulk load (checksummed, journaled file store).
``window_1pct`` / ``window_9pct``
    Region queries at the paper's 1%/9% selectivities, cold buffer.
``point``
    Point queries, cold buffer.
``knn``
    k-nearest-neighbour queries (best-first), cold buffer.
``window_1pct_warm``
    The 1% workload replayed on an already-warm buffer pool — the
    cold-vs-warm delta is the buffer pool's contribution.
``serve_roundtrip``
    The same region queries through the asyncio NDJSON server and
    client: wire protocol + admission + executor dispatch included.

One *opt-in* scenario lives outside the pinned suite (and therefore
outside the committed baseline and its diff bands):

``serve_pool``
    The 1% window workload driven by concurrent clients against the
    same server twice — in-process, then with a ``--workers`` pool of
    crash-isolated mmap-sharing worker processes — reporting both
    throughputs and their ratio.  Opt in with ``repro bench --workers
    N``; it never runs by default because its numbers are only
    meaningful on multi-core hosts and a new scenario would break the
    baseline diff's like-for-like guarantee.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.geometry import Rect
from ..core.packing.registry import make_algorithm
from ..datasets import uniform_points
from ..obs import runtime as obs
from ..obs.metrics import MetricsRegistry, percentile
from ..obs.spans import Tracer
from ..queries import point_queries, region_queries
from ..queries.workloads import REGION_SIDE_1PCT, REGION_SIDE_9PCT
from ..rtree.bulk import bulk_load
from ..rtree.knn import knn
from ..rtree.paged import PagedRTree
from ..storage.integrity import TRAILER_SIZE
from ..storage.page import required_page_size
from ..storage.store import FilePageStore

__all__ = ["BenchConfig", "ScenarioResult", "SuiteContext", "SCENARIOS",
           "EXTRA_SCENARIOS"]


@dataclass(frozen=True)
class BenchConfig:
    """Pinned knobs of one bench run (committed into the document)."""

    profile: str = "full"
    size: int = 100_000
    capacity: int = 100
    queries: int = 2_000
    buffer_pages: int = 250
    knn_queries: int = 250
    knn_k: int = 10
    serve_queries: int = 250
    seed: int = 0

    @classmethod
    def full(cls, seed: int = 0) -> "BenchConfig":
        """The committed-baseline profile (paper-scale workloads)."""
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 0) -> "BenchConfig":
        """The CI smoke profile: same shapes, small cells."""
        return cls(profile="quick", size=5_000, capacity=64,
                   queries=200, buffer_pages=64, knn_queries=50,
                   serve_queries=50, seed=seed)

    def as_dict(self) -> dict:
        """JSON-able config block of the bench document."""
        return {
            "profile": self.profile,
            "size": self.size,
            "capacity": self.capacity,
            "queries": self.queries,
            "buffer_pages": self.buffer_pages,
            "knn_queries": self.knn_queries,
            "knn_k": self.knn_k,
            "serve_queries": self.serve_queries,
            "seed": self.seed,
        }


@dataclass
class ScenarioResult:
    """One scenario's raw measurements, before document serialisation."""

    name: str
    description: str
    ops: int
    elapsed_s: float
    latencies_s: list[float]
    pages_read: int
    bytes_read: int
    buffer_hits: int
    buffer_misses: int
    tracer: Tracer
    extra: dict = field(default_factory=dict)

    def self_times(self) -> dict[str, float]:
        """Wall self-time split: read / decode / walk / other seconds."""
        phases = self.tracer.phase_summary()
        split = {
            key: float(phases.get(key, {}).get("wall_s", 0.0))
            for key in ("read", "decode", "walk")
        }
        total = sum(p["wall_s"] for p in phases.values())
        split["other"] = max(0.0, total - sum(split.values()))
        return split

    def as_dict(self) -> dict:
        """The scenario block of the bench document (sans tolerance)."""
        lat = self.latencies_s
        out = {
            "description": self.description,
            "ops": self.ops,
            "elapsed_s": self.elapsed_s,
            "queries_per_s": (self.ops / self.elapsed_s
                              if self.elapsed_s > 0 else 0.0),
            "mean_accesses": (self.pages_read / self.ops
                              if self.ops else 0.0),
            "latency_s": {
                "mean": (sum(lat) / len(lat)) if lat else 0.0,
                "p50": percentile(lat, 50.0) if lat else 0.0,
                "p95": percentile(lat, 95.0) if lat else 0.0,
                "p99": percentile(lat, 99.0) if lat else 0.0,
                "max": max(lat) if lat else 0.0,
            },
            "io": {
                "pages_read": self.pages_read,
                "bytes_read": self.bytes_read,
                "buffer_hits": self.buffer_hits,
                "buffer_misses": self.buffer_misses,
            },
            "self_time_s": self.self_times(),
        }
        out.update(self.extra)
        return out


@dataclass
class SuiteContext:
    """Shared state the scenarios thread through the suite in order."""

    config: BenchConfig
    workdir: str
    tree: PagedRTree | None = None
    #: Worker processes for the opt-in ``serve_pool`` scenario.  Not a
    #: :class:`BenchConfig` field on purpose: config is committed into
    #: the bench document and must stay identical between a run and its
    #: baseline for the diff bands to apply.
    serve_workers: int = 0

    @property
    def built_tree(self) -> PagedRTree:
        """The tree the ``build`` scenario produced (fails if skipped)."""
        if self.tree is None:
            raise RuntimeError(
                "query scenarios need the 'build' scenario to run first"
            )
        return self.tree


def _timed_ops(ops: Iterable, run_one: Callable) -> tuple[list[float], float]:
    """Run each op, returning per-op latencies and total elapsed time."""
    latencies: list[float] = []
    t_start = time.perf_counter()
    for op in ops:
        t0 = time.perf_counter()
        run_one(op)
        latencies.append(time.perf_counter() - t0)
    return latencies, time.perf_counter() - t_start


def _query_scenario(name: str, description: str, ctx: SuiteContext,
                    ops: list, run_one_for: Callable,
                    searcher=None, extra: dict | None = None
                    ) -> ScenarioResult:
    """Shared skeleton: cold (or given) searcher, traced, timed per op."""
    tree = ctx.built_tree
    if searcher is None:
        searcher = tree.searcher(ctx.config.buffer_pages)
    base = searcher.stats.snapshot()
    tracer = Tracer()
    with obs.telemetry(tracer, MetricsRegistry()):
        with obs.span(f"bench.{name}"):
            latencies, elapsed = _timed_ops(ops, run_one_for(searcher))
    stats = searcher.stats
    pages = stats.disk_reads - base.disk_reads
    return ScenarioResult(
        name=name, description=description, ops=len(ops),
        elapsed_s=elapsed, latencies_s=latencies,
        pages_read=pages,
        bytes_read=pages * tree.store.page_size,
        buffer_hits=stats.buffer_hits - base.buffer_hits,
        buffer_misses=stats.buffer_misses - base.buffer_misses,
        tracer=tracer, extra=dict(extra or {}),
    )


def scenario_build(ctx: SuiteContext) -> ScenarioResult:
    """Durable STR bulk load into a checksummed, journaled file store."""
    config = ctx.config
    points = uniform_points(config.size, seed=config.seed)
    page_size = (required_page_size(config.capacity, points.ndim)
                 + TRAILER_SIZE)
    path = os.path.join(ctx.workdir, "bench-tree.rt")
    store = FilePageStore(path, page_size, checksums=True, journal=True)
    tracer = Tracer()
    with obs.telemetry(tracer, MetricsRegistry()):
        with obs.span("bench.build"):
            t0 = time.perf_counter()
            tree, report = bulk_load(points, make_algorithm("STR"),
                                     capacity=config.capacity,
                                     store=store)
            elapsed = time.perf_counter() - t0
    ctx.tree = tree
    return ScenarioResult(
        name="build",
        description=(f"STR bulk load of {config.size} uniform points "
                     "into a durable (CRC + journal) page file"),
        ops=1, elapsed_s=elapsed, latencies_s=[elapsed],
        pages_read=report.build_io.disk_reads,
        bytes_read=report.build_io.disk_reads * store.page_size,
        buffer_hits=0, buffer_misses=0,
        tracer=tracer,
        extra={
            "records_per_s": (config.size / elapsed if elapsed > 0
                              else 0.0),
            "pages_written": report.pages_written,
            "height": report.height,
        },
    )


def _window_ops(ctx: SuiteContext, side: float, label: str) -> list[Rect]:
    count = ctx.config.queries
    seed = ctx.config.seed * 1000 + (17 if side < 0.2 else 19)
    return list(region_queries(side, count, seed=seed, kind=label))


def scenario_window_1pct(ctx: SuiteContext) -> ScenarioResult:
    """1%-selectivity window queries against a cold buffer pool."""
    ops = _window_ops(ctx, REGION_SIDE_1PCT, "region 1%")
    return _query_scenario(
        "window_1pct",
        "region queries, 1% of space, cold LRU buffer",
        ctx, ops, lambda s: s.search,
    )


def scenario_window_9pct(ctx: SuiteContext) -> ScenarioResult:
    """9%-selectivity window queries against a cold buffer pool."""
    ops = _window_ops(ctx, REGION_SIDE_9PCT, "region 9%")
    return _query_scenario(
        "window_9pct",
        "region queries, 9% of space, cold LRU buffer",
        ctx, ops, lambda s: s.search,
    )


def scenario_point(ctx: SuiteContext) -> ScenarioResult:
    """Point queries against a cold buffer pool."""
    ops = list(point_queries(ctx.config.queries,
                             seed=ctx.config.seed * 1000 + 23))
    return _query_scenario(
        "point",
        "point queries, cold LRU buffer",
        ctx, ops, lambda s: s.search,
    )


def scenario_knn(ctx: SuiteContext) -> ScenarioResult:
    """Best-first kNN queries against a cold buffer pool."""
    config = ctx.config
    workload = point_queries(config.knn_queries,
                             seed=config.seed * 1000 + 29)
    ops = [tuple(rect.lo) for rect in workload]
    return _query_scenario(
        "knn",
        f"k={config.knn_k} nearest-neighbour queries, cold LRU buffer",
        ctx, ops,
        lambda s: (lambda pt: knn(s, pt, config.knn_k)),
    )


def scenario_window_1pct_warm(ctx: SuiteContext) -> ScenarioResult:
    """The 1% window workload replayed on a pre-warmed buffer pool."""
    ops = _window_ops(ctx, REGION_SIDE_1PCT, "region 1%")
    searcher = ctx.built_tree.searcher(ctx.config.buffer_pages)
    searcher.warm(ops)
    return _query_scenario(
        "window_1pct_warm",
        "region queries, 1% of space, warm LRU buffer (second pass)",
        ctx, ops, lambda s: s.search, searcher=searcher,
    )


def scenario_serve_roundtrip(ctx: SuiteContext) -> ScenarioResult:
    """1% window queries through the asyncio server and client.

    Measures full round-trip latency — NDJSON encode/decode, admission
    control, executor dispatch, the tree walk, and the sorted-id reply —
    against a freshly started in-process server on an ephemeral port.
    """
    from ..serve.client import QueryClient
    from ..serve.server import QueryServer

    config = ctx.config
    tree = ctx.built_tree
    ops = list(region_queries(REGION_SIDE_1PCT, config.serve_queries,
                              seed=config.seed * 1000 + 31))
    tracer = Tracer()

    async def _drive(server: "QueryServer") -> tuple[list[float], float]:
        host, port = await server.start("127.0.0.1", 0)
        client = await QueryClient.connect(host, port)
        try:
            latencies: list[float] = []
            t_start = time.perf_counter()
            for rect in ops:
                t0 = time.perf_counter()
                resp = await client.search(rect)
                resp.raise_for_error()
                latencies.append(time.perf_counter() - t0)
            return latencies, time.perf_counter() - t_start
        finally:
            await client.aclose()
            await server.aclose()

    with obs.telemetry(tracer, MetricsRegistry()):
        with obs.span("bench.serve_roundtrip"):
            server = QueryServer(
                tree, buffer_pages=config.buffer_pages,
                default_deadline_s=60.0, max_deadline_s=60.0,
            )
            latencies, elapsed = asyncio.run(_drive(server))
    stats = server.searcher.stats
    return ScenarioResult(
        name="serve_roundtrip",
        description=("region queries (1% of space) through the asyncio "
                     "NDJSON server + client on loopback"),
        ops=len(ops), elapsed_s=elapsed, latencies_s=latencies,
        pages_read=stats.disk_reads,
        bytes_read=stats.disk_reads * tree.store.page_size,
        buffer_hits=stats.buffer_hits,
        buffer_misses=stats.buffer_misses,
        tracer=tracer,
        extra={"transport": "asyncio-ndjson"},
    )


def scenario_serve_pool(ctx: SuiteContext) -> ScenarioResult:
    """Concurrent 1% window load: in-process vs the worker-process pool.

    Drives ``2 * workers`` concurrent clients through the same query
    list against (a) a plain in-process server and (b) a server with a
    ``workers``-process pool sharing the tree file via mmap, and
    reports both throughputs.  The pool's latencies are the scenario's
    headline numbers; ``extra`` carries the in-process baseline and the
    speedup ratio.  Single-core hosts legitimately see ratios <= 1 —
    that is a fact about the host, not a regression, which is one more
    reason this scenario stays outside the banded baseline.
    """
    from ..serve.client import QueryClient
    from ..serve.server import QueryServer

    config = ctx.config
    tree = ctx.built_tree
    workers = max(ctx.serve_workers, 1)
    clients = workers * 2
    ops = list(region_queries(REGION_SIDE_1PCT, config.serve_queries,
                              seed=config.seed * 1000 + 31))
    shards = [ops[i::clients] for i in range(clients)]

    async def _one_client(host: str, port: int, rects: list[Rect],
                          latencies: list[float]) -> None:
        client = await QueryClient.connect(host, port)
        try:
            for rect in rects:
                t0 = time.perf_counter()
                resp = await client.search(rect)
                resp.raise_for_error()
                latencies.append(time.perf_counter() - t0)
        finally:
            await client.aclose()

    async def _drive(server: "QueryServer") -> tuple[list[float], float]:
        host, port = await server.start("127.0.0.1", 0)
        try:
            latencies: list[float] = []
            t_start = time.perf_counter()
            await asyncio.gather(*(
                _one_client(host, port, shard, latencies)
                for shard in shards if shard))
            return latencies, time.perf_counter() - t_start
        finally:
            await server.aclose()

    def _run(n_workers: int) -> tuple[list[float], float, "QueryServer"]:
        server = QueryServer(
            tree, buffer_pages=config.buffer_pages,
            default_deadline_s=60.0, max_deadline_s=60.0,
            max_inflight=max(clients, 8), max_queue=max(clients * 2, 16),
            workers=n_workers,
        )
        latencies, elapsed = asyncio.run(_drive(server))
        return latencies, elapsed, server

    tracer = Tracer()
    with obs.telemetry(tracer, MetricsRegistry()):
        with obs.span("bench.serve_pool"):
            _, base_elapsed, _ = _run(0)
            latencies, elapsed, server = _run(workers)
    if server.pool_start_error is not None:
        raise RuntimeError(
            f"serve_pool could not start its worker pool: "
            f"{server.pool_start_error}")
    base_qps = len(ops) / base_elapsed if base_elapsed > 0 else 0.0
    pool_qps = len(ops) / elapsed if elapsed > 0 else 0.0
    return ScenarioResult(
        name="serve_pool",
        description=(f"region queries (1% of space), {clients} concurrent "
                     f"clients: {workers}-process mmap pool vs in-process"),
        ops=len(ops), elapsed_s=elapsed, latencies_s=latencies,
        pages_read=0,  # worker-process reads are not in this searcher
        bytes_read=0,
        buffer_hits=0, buffer_misses=0,
        tracer=tracer,
        extra={
            "transport": "asyncio-ndjson",
            "workers": workers,
            "concurrent_clients": clients,
            "inprocess_qps": base_qps,
            "pool_qps": pool_qps,
            "pool_speedup": (pool_qps / base_qps) if base_qps else 0.0,
            "pool_fallbacks": server.pool_fallbacks,
        },
    )


#: Suite order matters: ``build`` creates the tree, ``serve_roundtrip``
#: attaches a breaker to the shared store so it runs last.
SCENARIOS: dict[str, Callable[[SuiteContext], ScenarioResult]] = {
    "build": scenario_build,
    "window_1pct": scenario_window_1pct,
    "window_9pct": scenario_window_9pct,
    "point": scenario_point,
    "knn": scenario_knn,
    "window_1pct_warm": scenario_window_1pct_warm,
    "serve_roundtrip": scenario_serve_roundtrip,
}

#: Opt-in scenarios, excluded from the pinned suite and its committed
#: baseline (``repro bench --workers N`` adds ``serve_pool``).
EXTRA_SCENARIOS: dict[str, Callable[[SuiteContext], ScenarioResult]] = {
    "serve_pool": scenario_serve_pool,
}
