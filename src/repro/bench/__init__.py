"""Performance-trajectory benchmark harness (``repro bench``).

The paper's protocol is accesses-per-query; production claims need
wall-clock throughput with attributed self-time.  This package runs a
pinned scenario suite — bulk build, window-query sweeps at the paper's
selectivities, point queries, kNN, cold-vs-warm buffer pool, and a
serve-layer round-trip through the asyncio client — under the span
tracer and metrics registry, then writes a schema-versioned
``BENCH_<host-class>.json``: queries/sec, p50/p95/p99 latency,
pages/bytes read, and read/decode/walk self-time per scenario, plus an
environment fingerprint and per-scenario tolerance bands for regression
gating.

The committed ``BENCH_*.json`` at the repo root is the baseline every
later perf PR diffs against (``repro report --diff``); the CI
``bench-smoke`` job re-runs the quick suite and fails only outside the
tolerance bands.  See ``docs/benchmarking.md``.
"""

from .report import (
    diff_tables,
    list_runs_table,
    prune_runs,
    render_manifest_text,
    resolve_run_manifest,
)
from .runner import run_bench
from .schema import (
    BENCH_FORMAT,
    BenchSchemaError,
    default_bench_name,
    environment_fingerprint,
    host_class,
    load_bench,
    validate_bench,
    write_bench,
)
from .scenarios import BenchConfig, ScenarioResult, SCENARIOS

__all__ = [
    "BENCH_FORMAT",
    "BenchConfig",
    "BenchSchemaError",
    "ScenarioResult",
    "SCENARIOS",
    "default_bench_name",
    "diff_tables",
    "environment_fingerprint",
    "host_class",
    "list_runs_table",
    "load_bench",
    "prune_runs",
    "render_manifest_text",
    "resolve_run_manifest",
    "run_bench",
    "validate_bench",
    "write_bench",
]
