"""Offline consistency check for on-disk R-tree files: ``repro fsck``.

``fsck`` answers one question about a tree file: *can every byte of it be
trusted?*  It runs three phases, each strictly weaker failures short-cut:

1. **Open & recover** — locate the superblock (durable stores are
   self-describing), replay any intact write-journal records, and refuse
   precisely when the file cannot be opened at all.
2. **Page scan** — read every committed page raw, verify its CRC32C
   trailer (durable stores), and decode it with the node codec.  Every
   failure is collected, not just the first.
3. **Structural walk** — when all pages are intact, reattach the tree and
   check the R-tree invariants (MBR containment, level monotonicity,
   reference counts, record counts) plus reachability: a committed page
   no root-to-leaf path touches is reported as an orphan.

When the file has a streaming-ingest sidecar directory
(``<path>.ingest/``, see :mod:`repro.ingest`), a fourth phase verifies
it: every WAL segment is parsed record by record (CRC per record, seal
protocol, LSN monotonicity), classified ``sealed``/``active``/``torn``,
and checked against the directory invariant that only the
highest-numbered segment may be unsealed; the generation pointer, when
present, must parse, pass its CRC and name an existing file.  A torn
active tail is *reported but not an error* — it is exactly the un-acked
partial line a crash legally leaves and the next open discards.

The result is an :class:`FsckReport` — renderable for terminals,
JSON-able for run manifests (the CLI embeds it under ``extra.fsck``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .rtree.paged import PagedRTree
from .rtree.validate import iter_paged_violations
from .storage.integrity import (
    ChecksumError,
    IntegrityError,
    verify_trailer,
)
from .storage.page import PageFormatError, decode_node
from .storage.store import FilePageStore, StoreError

__all__ = [
    "FsckReport",
    "fsck",
    "QUARANTINE_FORMAT",
    "write_quarantine",
    "read_quarantine",
]

#: Format tag of the quarantine file ``repro fsck --quarantine`` writes
#: and ``repro serve --quarantine`` consumes.
QUARANTINE_FORMAT = "repro-quarantine-v1"


@dataclass
class FsckReport:
    """Everything ``fsck`` learned about one tree file."""

    path: str
    page_size: int = 0
    checksums: bool = False
    journal: bool = False
    pages_checked: int = 0
    journal_recovered: bool = False
    recovered_pages: int = 0
    checksum_errors: list[str] = field(default_factory=list)
    decode_errors: list[str] = field(default_factory=list)
    structural_errors: list[str] = field(default_factory=list)
    #: Page ids whose bytes cannot be trusted (checksum or decode
    #: failures) — the set :func:`write_quarantine` exports for the
    #: serving layer to skip.
    bad_pages: list[int] = field(default_factory=list)
    #: Set when the file could not be checked at all (unopenable store,
    #: no committed tree).  A fatal report is never clean.
    fatal: str | None = None
    #: The committed tree header, when one exists.
    tree: dict | None = None
    #: Damage found in the ingest sidecar (``<path>.ingest/``): corrupt
    #: WAL records, seal-protocol violations, a bad generation pointer.
    wal_errors: list[str] = field(default_factory=list)
    #: Per-segment ingest summary, when a sidecar directory exists.
    ingest: dict | None = None

    @property
    def error_count(self) -> int:
        return (len(self.checksum_errors) + len(self.decode_errors)
                + len(self.structural_errors) + len(self.wal_errors)
                + (1 if self.fatal else 0))

    @property
    def clean(self) -> bool:
        """True when every phase ran and found nothing wrong."""
        return self.error_count == 0

    def as_dict(self) -> dict:
        """JSON-able form (embedded in run manifests, CI artifacts)."""
        return {
            "path": self.path,
            "page_size": self.page_size,
            "checksums": self.checksums,
            "journal": self.journal,
            "pages_checked": self.pages_checked,
            "journal_recovered": self.journal_recovered,
            "recovered_pages": self.recovered_pages,
            "checksum_errors": list(self.checksum_errors),
            "decode_errors": list(self.decode_errors),
            "structural_errors": list(self.structural_errors),
            "bad_pages": list(self.bad_pages),
            "fatal": self.fatal,
            "tree": dict(self.tree) if self.tree is not None else None,
            "wal_errors": list(self.wal_errors),
            "ingest": dict(self.ingest) if self.ingest is not None
            else None,
            "clean": self.clean,
        }

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"fsck {self.path}"]
        if self.fatal is not None:
            lines.append(f"  FATAL: {self.fatal}")
            return "\n".join(lines)
        flags = [name for name, on in (("checksums", self.checksums),
                                       ("journal", self.journal)) if on]
        lines.append(
            f"  page size {self.page_size}, "
            f"durability {'+'.join(flags) if flags else 'none'}, "
            f"{self.pages_checked} pages scanned"
        )
        if self.journal_recovered:
            lines.append(
                f"  journal: replayed {self.recovered_pages} page(s)"
            )
        if self.tree is not None:
            lines.append(
                f"  tree: height {self.tree['height']}, "
                f"root page {self.tree['root_page']}, "
                f"{self.tree['size']} records"
            )
        if self.ingest is not None:
            segments = self.ingest.get("segments", [])
            lines.append(
                f"  ingest: {len(segments)} WAL segment(s), "
                f"{self.ingest.get('pending_ops', 0)} pending op(s), "
                f"generation "
                f"{self.ingest.get('generation') or 'unmerged'}"
            )
            for seg in segments:
                lines.append(
                    f"    wal-{seg['seq']:08d}: {seg['state']}, "
                    f"{seg['ops']} op(s), last lsn {seg['last_lsn']}"
                )
        for title, errors in (("checksum", self.checksum_errors),
                              ("decode", self.decode_errors),
                              ("structural", self.structural_errors),
                              ("wal", self.wal_errors)):
            for message in errors:
                lines.append(f"  {title}: {message}")
        if (self.checksum_errors or self.decode_errors) \
                and not self.structural_errors:
            lines.append("  structural walk skipped (broken pages)")
        lines.append("  clean" if self.clean
                     else f"  {self.error_count} error(s)")
        return "\n".join(lines)


def _load_sidecar(meta_path: str) -> dict:
    """Read a ``PagedRTree.save_meta`` sidecar (raises ValueError)."""
    with open(meta_path) as f:
        meta = json.load(f)
    if meta.get("format") != "repro-rtree-meta-v1":
        raise ValueError(f"{meta_path}: not a repro R-tree meta file")
    return meta


def fsck(path: str | os.PathLike, *, meta_path: str | os.PathLike | None = None,
         page_size: int | None = None) -> FsckReport:
    """Check the tree file at ``path``; never raises for file problems —
    every failure lands in the returned :class:`FsckReport`.

    Durable files (superblock present) need no other input: page size,
    flags and the tree header come from the file, and an intact journal
    is replayed first (the recovery is reported).  Plain page files need
    a ``meta_path`` sidecar (or an explicit ``page_size``) since nothing
    in the file describes it.

    A streaming-ingest sidecar directory (``<path>.ingest/``) is
    verified whenever one exists — even when the tree file itself is
    damaged, since the WAL may be the only surviving copy of recent
    writes.
    """
    report = _fsck_store(path, meta_path=meta_path, page_size=page_size)
    _check_ingest(os.fspath(path), report)
    return report


def _fsck_store(path: str | os.PathLike, *,
                meta_path: str | os.PathLike | None = None,
                page_size: int | None = None) -> FsckReport:
    """Phases 1-3: the page store and the packed tree inside it."""
    path = os.fspath(path)
    report = FsckReport(path=path)
    if not os.path.exists(path):
        report.fatal = "file does not exist"
        return report

    sidecar: dict | None = None
    if meta_path is not None:
        try:
            sidecar = _load_sidecar(os.fspath(meta_path))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            report.fatal = f"cannot read meta sidecar: {exc}"
            return report

    with open(path, "rb") as f:
        durable = f.read(4)[:4] == b"RSUP"

    store: FilePageStore | None = None
    try:
        if durable:
            # Self-describing: superblock supplies the layout, and opening
            # with the journal flag replays any crash-interrupted writes.
            store = FilePageStore.open_existing(path)
        else:
            if page_size is None and sidecar is not None:
                page_size = int(sidecar["page_size"])
            if page_size is None:
                report.fatal = ("no superblock and no page size — pass a "
                                "meta sidecar (--meta) or --page-size")
                return report
            store = FilePageStore(path, page_size)
    except (StoreError, IntegrityError, OSError) as exc:
        report.fatal = f"cannot open store: {exc}"
        return report

    try:
        report.page_size = store.page_size
        report.checksums = store.checksums
        report.journal = store.journal_enabled
        report.journal_recovered = store.recoveries > 0
        report.recovered_pages = store.recovered_pages

        # -- phase 2 of 3: every committed page must verify and decode ----
        for pid in range(store.page_count):
            image = store.raw_read(pid)
            payload = image
            if store.checksums:
                try:
                    payload = verify_trailer(image, pid, source=path)
                except ChecksumError as exc:
                    report.checksum_errors.append(str(exc))
                    report.bad_pages.append(pid)
                    continue
            try:
                decode_node(payload, page_id=pid, source=path)
            except PageFormatError as exc:
                report.decode_errors.append(str(exc))
                report.bad_pages.append(pid)
        report.pages_checked = store.page_count

        # -- phase 3: the pages form a committed, well-shaped tree --------
        meta = store.tree_meta if durable else sidecar
        if meta is None:
            report.fatal = (
                "no tree metadata — the build never committed "
                "(crash before completion?); the file is not a usable tree"
            )
            return report
        report.tree = {k: int(meta[k]) for k in
                       ("height", "root_page", "ndim", "capacity", "size")}
        if report.checksum_errors or report.decode_errors:
            return report  # structural walk would chase broken pages
        if not 0 <= report.tree["root_page"] < store.page_count:
            report.structural_errors.append(
                f"root page {report.tree['root_page']} out of range "
                f"[0, {store.page_count})"
            )
            return report
        tree = PagedRTree(store, report.tree["root_page"],
                          height=report.tree["height"],
                          ndim=report.tree["ndim"],
                          capacity=report.tree["capacity"],
                          size=report.tree["size"])
        report.structural_errors.extend(iter_paged_violations(tree))
        reachable = {pid for pid, _ in tree.iter_nodes()}
        for pid in range(store.page_count):
            if pid not in reachable:
                report.structural_errors.append(
                    f"page {pid} is committed but unreachable from the root"
                )
    except (StoreError, IntegrityError, PageFormatError) as exc:
        report.fatal = f"check aborted: {exc}"
    finally:
        try:
            # A check is read-only: flush (and its superblock commit)
            # only when opening actually recovered journalled pages —
            # otherwise the file's bytes stay untouched.
            store.close(flush=store.recoveries > 0)
        except (StoreError, OSError):  # pragma: no cover
            pass
    return report


def _check_ingest(path: str, report: FsckReport) -> None:
    """Phase 4: verify the streaming-ingest sidecar, if present.

    Fills ``report.ingest`` with a per-segment summary and appends to
    ``report.wal_errors`` for every violation: a record failing its
    CRC, damage before the torn tail, a broken seal, an unsealed
    segment below the active one, or an unreadable generation pointer.
    """
    from .ingest.merge import read_pointer
    from .ingest.wal import IngestError, WalCorrupt, WalSegment, \
        ingest_dir, segment_seq

    dir_path = ingest_dir(path)
    if not os.path.isdir(dir_path):
        return

    summary: dict = {"dir": dir_path, "segments": [],
                     "pending_ops": 0, "generation": None,
                     "merged_seq": 0}
    try:
        pointer = read_pointer(dir_path)
    except IngestError as exc:
        report.wal_errors.append(str(exc))
        pointer = None
    if pointer is not None:
        summary["generation"] = pointer.generation
        summary["merged_seq"] = pointer.merged_seq
        if not os.path.exists(pointer.path):
            report.wal_errors.append(
                f"generation pointer names missing file {pointer.path}")

    found: list[tuple[int, str]] = []
    for name in os.listdir(dir_path):
        seq = segment_seq(name)
        if seq is not None:
            found.append((seq, os.path.join(dir_path, name)))
    segments: list = []
    for seq, seg_path in sorted(found):
        try:
            segment = WalSegment.load(seg_path)
        except WalCorrupt as exc:
            report.wal_errors.append(str(exc))
            summary["segments"].append(
                {"seq": seq, "state": "corrupt", "ops": 0,
                 "last_lsn": 0, "bytes": os.path.getsize(seg_path)})
            continue
        segments.append(segment)
        state = ("sealed" if segment.sealed
                 else "active+torn" if segment.torn else "active")
        summary["segments"].append(
            {"seq": segment.seq, "state": state, "ops": len(segment.ops),
             "last_lsn": segment.last_lsn, "bytes": segment.size_bytes})
        if pointer is None or segment.seq > pointer.merged_seq:
            summary["pending_ops"] += len(segment.ops)
    for segment in segments[:-1]:
        if not segment.sealed:
            report.wal_errors.append(
                f"{segment.path}: unsealed segment below the active one "
                f"— the seal protocol was violated")
    report.ingest = summary


def write_quarantine(report: FsckReport, path: str | os.PathLike) -> str:
    """Write the report's untrustworthy page ids as a quarantine file.

    The file is a small JSON document (``repro-quarantine-v1``) the
    serving layer loads at startup (``repro serve --quarantine``): the
    listed subtrees are skipped without any I/O and every affected
    response is flagged ``partial`` — corrupt pages degrade queries
    instead of failing them.  An empty quarantine is valid (and is what
    a clean check writes).
    """
    path = os.fspath(path)
    payload = {
        "format": QUARANTINE_FORMAT,
        "source": report.path,
        "page_size": report.page_size,
        "pages_checked": report.pages_checked,
        "bad_pages": sorted(set(report.bad_pages)),
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def read_quarantine(path: str | os.PathLike) -> set[int]:
    """Load a quarantine file back into the set of bad page ids.

    Raises ``ValueError`` for files that are not quarantine files —
    feeding the server the wrong file must fail loudly, not silently
    skip page 0.
    """
    path = os.fspath(path)
    with open(path) as f:
        payload = json.load(f)
    if (not isinstance(payload, dict)
            or payload.get("format") != QUARANTINE_FORMAT):
        raise ValueError(f"{path}: not a {QUARANTINE_FORMAT} file")
    pages = payload.get("bad_pages")
    if (not isinstance(pages, list)
            or not all(isinstance(p, int) and not isinstance(p, bool)
                       and p >= 0 for p in pages)):
        raise ValueError(f"{path}: bad_pages must be a list of page ids")
    return set(pages)
