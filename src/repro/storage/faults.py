"""Deterministic fault injection and retry policy for page stores.

Three cooperating pieces:

* :class:`CrashPlan` — a *physical-level* schedule: it rides inside a
  :class:`~repro.storage.store.FilePageStore` and fires on the Nth byte
  string written to the OS, optionally tearing that write (only a prefix
  reaches the file) before raising :class:`SimulatedCrash`.  This is the
  crash-matrix engine: because journal appends and in-place page writes go
  through the same hook, every point of the double-write protocol can be
  interrupted.
* :class:`FaultPlan` + :class:`FaultInjectingPageStore` — an *API-level*
  wrapper around any store: seeded, deterministic transient ``IOError``\\ s
  on reads/writes, at-rest single-bit flips beneath the inner store's
  checksum layer, torn writes that bypass the journal, and
  crash-at-Nth-write.
* :class:`RetryPolicy` — bounded retry with backoff, consulted by
  :meth:`~repro.storage.store.PageStore.read_page` /
  :meth:`~repro.storage.store.PageStore.write_page` on any store.  Retries
  never touch the I/O counters (the paper's access counts stay
  bit-identical); they surface as per-fault-type
  ``storage.retries{fault=...}`` counters.

Everything is deterministic given the plan's seed and the operation
sequence, so a failing fault-injection run reproduces exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterable, TypeVar

_T = TypeVar("_T")

from ..obs import runtime as obs
from .breaker import CircuitBreaker
from .counters import IOStats
from .store import PageStore, SimulatedCrash, StoreError

__all__ = [
    "SimulatedCrash",
    "TransientIOError",
    "RetryPolicy",
    "CrashPlan",
    "FaultPlan",
    "FaultInjectingPageStore",
    "flip_bit",
    "corrupt_pages",
]


class TransientIOError(OSError):
    """An I/O error that succeeds on retry (bus glitch, EINTR, ...)."""


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return ``data`` with one bit inverted (``bit_index`` in [0, 8n))."""
    byte_index, bit = divmod(bit_index, 8)
    out = bytearray(data)
    out[byte_index] ^= 1 << bit
    return bytes(out)


@dataclass
class RetryPolicy:
    """Bounded retry-with-backoff for transient storage faults.

    ``attempts`` counts total tries (1 = no retry).  The delay starts at
    ``backoff_s`` and multiplies by ``multiplier`` per retry, capped at
    ``max_backoff_s``; tests inject ``sleep`` to keep wall-clock at zero.

    ``jitter=True`` applies *full jitter*: each sleep draws uniformly from
    ``[0, nominal_delay]`` so a fleet of clients retrying the same sick
    store does not stampede it in lockstep.  The draw comes from a private
    ``Random(seed)``, so a seeded policy's delay schedule is deterministic
    and a failing run reproduces exactly.

    ``on_retry`` (see :meth:`run`) receives the exception that triggered
    the retry, letting callers keep per-fault-type counters.
    """

    attempts: int = 4
    backoff_s: float = 0.0
    multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter: bool = False
    seed: int = 0
    retryable: tuple = (TransientIOError,)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        self._rng = Random(self.seed)

    def run(self, fn: Callable[[], _T],
            on_retry: Callable[[BaseException], None] | None = None) -> _T:
        """Call ``fn`` until it succeeds or the attempt budget is spent."""
        if self.attempts < 1:
            raise StoreError(f"retry attempts must be >= 1, got "
                             f"{self.attempts}")
        delay = self.backoff_s
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retryable as exc:
                if attempt == self.attempts - 1:
                    raise
                if on_retry is not None:
                    on_retry(exc)
                if delay > 0:
                    self.sleep(self._rng.uniform(0.0, delay)
                               if self.jitter else delay)
                delay = min(delay * self.multiplier if delay > 0
                            else self.backoff_s, self.max_backoff_s)
        raise AssertionError("unreachable")  # pragma: no cover

    def delays(self) -> "Iterable[float]":
        """The policy's delay schedule as a lazy sequence, for callers
        that cannot use :meth:`run` (e.g. async code that must ``await``
        its sleeps).  Yields ``attempts - 1`` delays — one per permitted
        retry — drawn from the same seeded jitter stream as :meth:`run`,
        so a seeded policy's schedule stays reproducible either way.
        """
        delay = self.backoff_s
        for _ in range(max(self.attempts - 1, 0)):
            if delay > 0:
                yield (self._rng.uniform(0.0, delay) if self.jitter
                       else delay)
            else:
                yield 0.0
            delay = min(delay * self.multiplier if delay > 0
                        else self.backoff_s, self.max_backoff_s)


class CrashPlan:
    """Crash at the Nth *physical file write*, optionally tearing it.

    ``at_write`` is the 0-based index of the fatal write across every file
    the store touches (journal appends, in-place page writes, superblock
    slots).  ``tear_bytes`` controls how much of that write reaches the
    disk: ``None`` crashes cleanly before the write, ``k`` leaves a k-byte
    prefix (a torn write), and anything >= the write's length lands the
    whole write before dying.
    """

    def __init__(self, at_write: int, *,
                 tear_bytes: int | None = None) -> None:
        if at_write < 0:
            raise StoreError(f"at_write must be >= 0, got {at_write}")
        self.at_write = at_write
        self.tear_bytes = tear_bytes
        self.writes_seen = 0

    def next_write(self, data: bytes) -> tuple[bytes, bool]:
        """What actually reaches the file, and whether to crash after it."""
        index = self.writes_seen
        self.writes_seen += 1
        if index != self.at_write:
            return data, False
        if self.tear_bytes is None:
            return b"", True
        return data[:self.tear_bytes], True


@dataclass
class FaultPlan:
    """Seeded, deterministic schedule of API-level storage faults.

    Probabilistic faults draw from a private ``Random(seed)`` in operation
    order, so two runs over the same workload inject identically.  At most
    ``max_transient_per_op`` *consecutive* transient faults are injected,
    which guarantees a :class:`RetryPolicy` with more attempts than that
    always gets through.
    """

    seed: int = 0
    #: Probability a read / write attempt raises :class:`TransientIOError`.
    p_transient_read: float = 0.0
    p_transient_write: float = 0.0
    max_transient_per_op: int = 2
    #: Probability a committed write is then corrupted at rest (one random
    #: bit of the stored physical image flipped), plus explicit write
    #: indices that always decay.
    p_bit_flip: float = 0.0
    bit_flip_writes: frozenset = frozenset()
    #: 0-based write_page index to tear: a prefix of the image is stored
    #: raw, bypassing checksum stamping and the journal, then the plan
    #: crashes.  ``torn_fraction`` picks the tear point.
    torn_write_at: int | None = None
    torn_fraction: float = 0.5
    #: 0-based write_page index at which to raise :class:`SimulatedCrash`
    #: (before the inner write runs).
    crash_at_write: int | None = None

    def __post_init__(self) -> None:
        self._rng = Random(self.seed)
        self._consecutive = 0
        self.reads_seen = 0
        self.writes_seen = 0
        self.injected: dict[str, int] = {
            "transient_read": 0, "transient_write": 0,
            "bit_flip": 0, "torn_write": 0, "crash": 0,
        }

    # Each helper is called once per *attempt*; retries re-enter and draw
    # fresh randomness, so a faulted op can succeed on its next try.

    def _transient(self, p: float, kind: str, what: str) -> None:
        if p > 0 and self._consecutive < self.max_transient_per_op \
                and self._rng.random() < p:
            self._consecutive += 1
            self.injected[kind] += 1
            raise TransientIOError(f"injected transient fault on {what}")
        self._consecutive = 0

    def on_read(self, page_id: int) -> None:
        """Called per read attempt; may raise :class:`TransientIOError`."""
        self.reads_seen += 1
        self._transient(self.p_transient_read, "transient_read",
                        f"read of page {page_id}")

    def on_write(self, page_id: int) -> str | None:
        """Returns ``'torn'``/``'crash'`` for scheduled disasters, else
        ``None`` after possibly raising a transient fault."""
        index = self.writes_seen
        self.writes_seen += 1
        if index == self.torn_write_at:
            self.injected["torn_write"] += 1
            return "torn"
        if index == self.crash_at_write:
            self.injected["crash"] += 1
            return "crash"
        self._transient(self.p_transient_write, "transient_write",
                        f"write of page {page_id}")
        return None

    def wants_bit_flip(self, write_index: int) -> bool:
        """Whether the write that just landed should decay at rest."""
        if write_index in self.bit_flip_writes:
            return True
        return self.p_bit_flip > 0 and self._rng.random() < self.p_bit_flip

    def pick_bit(self, nbytes: int) -> int:
        """Draw the bit index to flip in an ``nbytes`` physical image."""
        return self._rng.randrange(nbytes * 8)

    def tear_point(self, nbytes: int) -> int:
        """How many bytes of a torn write reach the store (at least 1)."""
        return max(1, int(nbytes * self.torn_fraction))


class FaultInjectingPageStore(PageStore):
    """Wrap any store and inject the plan's faults around its I/O.

    The wrapper shares the inner store's :class:`IOStats` by default so
    page traffic is counted exactly once, in the same counters a bare
    store would use — fault injection must never move the paper's access
    numbers.  Bit flips are applied *at rest* through the inner store's
    raw (checksum-bypassing) access, which is what makes them detectable
    by the checksum layer on the next read.
    """

    def __init__(self, inner: PageStore, plan: FaultPlan, *,
                 retry: RetryPolicy | None = None,
                 stats: IOStats | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        super().__init__(inner.page_size,
                         stats if stats is not None else inner.stats,
                         retry=retry, breaker=breaker)
        self.inner = inner
        self.plan = plan

    @property
    def payload_size(self) -> int:
        return self.inner.payload_size

    @property
    def page_count(self) -> int:
        return self.inner.page_count

    # The wrapper is transparent to tree plumbing: a durable inner store's
    # superblock metadata (and path, for error messages) shines through so
    # ``PagedRTree.from_store`` and ``bulk_load`` work on a faulty store.

    @property
    def path(self) -> str | None:
        return getattr(self.inner, "path", None)

    @property
    def supports_tree_meta(self) -> bool:
        return getattr(self.inner, "supports_tree_meta", False)

    @property
    def tree_meta(self) -> dict | None:
        return getattr(self.inner, "tree_meta", None)

    def set_tree_meta(self, meta: dict) -> None:
        """Commit tree metadata through to the inner (durable) store."""
        self.inner.set_tree_meta(meta)

    def allocate(self) -> int:
        return self.inner.allocate()

    def _read(self, page_id: int) -> bytes:
        self.plan.on_read(page_id)
        return self.inner._read(page_id)

    def _write(self, page_id: int, data: bytes) -> None:
        disaster = self.plan.on_write(page_id)
        if disaster == "torn":
            torn = data[:self.plan.tear_point(len(data))]
            old = self.inner.raw_read(page_id)
            self.inner.raw_write(page_id, torn + old[len(torn):])
            raise SimulatedCrash(
                f"torn write of page {page_id} "
                f"({len(torn)}/{len(data)} bytes landed)"
            )
        if disaster == "crash":
            raise SimulatedCrash(f"crash before write of page {page_id}")
        self.inner._write(page_id, data)
        write_index = self.plan.writes_seen - 1
        if self.plan.wants_bit_flip(write_index):
            raw = self.inner.raw_read(page_id)
            bit = self.plan.pick_bit(len(raw))
            self.inner.raw_write(page_id, flip_bit(raw, bit))
            self.plan.injected["bit_flip"] += 1
            obs.inc("storage.faults.bit_flips")

    def raw_read(self, page_id: int) -> bytes:
        return self.inner.raw_read(page_id)

    def raw_write(self, page_id: int, data: bytes) -> None:
        self.inner.raw_write(page_id, data)

    def flush(self) -> None:
        """Flush the inner store, when it has the concept."""
        flush = getattr(self.inner, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Close the inner store."""
        self.inner.close()


def corrupt_pages(store: PageStore, page_bits: Iterable[tuple[int, int]]
                  ) -> None:
    """Flip ``(page_id, bit_index)`` pairs at rest (test/fsck tooling)."""
    for page_id, bit in page_bits:
        store.raw_write(page_id, flip_bit(store.raw_read(page_id), bit))
