"""I/O accounting.

The paper's primary comparison metric is the *number of disk accesses*
required to satisfy a query, measured through an LRU buffer over a raw disk
partition.  :class:`IOStats` is the single source of truth for that count:
every component that touches a page (buffer pool, page store) increments the
same counters, and experiment runners snapshot/reset them around each query
batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counter bundle for page-level I/O.

    Attributes
    ----------
    disk_reads:
        Pages fetched from the backing store (buffer misses).  This is the
        paper's "disk accesses" figure.
    disk_writes:
        Pages written back to the store (dirty evictions + explicit flushes).
    buffer_hits:
        Page requests satisfied from the buffer pool.
    buffer_misses:
        Page requests that had to go to the store.  Equal to ``disk_reads``
        for read-only workloads; kept separate so write-path accounting
        stays honest.
    """

    disk_reads: int = 0
    disk_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    _history: list["IOStats"] = field(default_factory=list, repr=False)

    def reset(self) -> None:
        """Zero all counters (history is preserved)."""
        self.disk_reads = 0
        self.disk_writes = 0
        self.buffer_hits = 0
        self.buffer_misses = 0

    def snapshot(self) -> "IOStats":
        """An immutable-ish copy of the current counts."""
        return IOStats(
            disk_reads=self.disk_reads,
            disk_writes=self.disk_writes,
            buffer_hits=self.buffer_hits,
            buffer_misses=self.buffer_misses,
        )

    def checkpoint(self) -> None:
        """Append a snapshot to the history, then reset."""
        self._history.append(self.snapshot())
        self.reset()

    @property
    def history(self) -> tuple["IOStats", ...]:
        return tuple(self._history)

    @property
    def total_accesses(self) -> int:
        """Reads + writes: total page traffic to the store."""
        return self.disk_reads + self.disk_writes

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from the buffer (0 when idle)."""
        total = self.buffer_hits + self.buffer_misses
        if total == 0:
            return 0.0
        return self.buffer_hits / total

    def __add__(self, other: "IOStats") -> "IOStats":
        if not isinstance(other, IOStats):
            return NotImplemented
        return IOStats(
            disk_reads=self.disk_reads + other.disk_reads,
            disk_writes=self.disk_writes + other.disk_writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            buffer_misses=self.buffer_misses + other.buffer_misses,
        )
