"""I/O accounting.

The paper's primary comparison metric is the *number of disk accesses*
required to satisfy a query, measured through an LRU buffer over a raw disk
partition.  :class:`IOStats` is the single source of truth for that count:
every component that touches a page (buffer pool, page store) increments the
same counters, and experiment runners snapshot/reset them around each query
batch.

Since the observability layer landed, :class:`IOStats` is a thin façade
over :class:`~repro.obs.metrics.MetricsRegistry` counters: each field
(``disk_reads``, ``disk_writes``, ``buffer_hits``, ``buffer_misses``,
``evictions``) is backed by an ``io.<field>`` counter in a registry.  By
default every ``IOStats`` owns a private registry, so behaviour and
isolation are exactly as before; passing a shared registry makes several
components report into one place.  The attribute API (``stats.disk_reads
+= 1``) is unchanged — hot paths do not know the registry exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.metrics import Counter, MetricsRegistry

__all__ = ["IOStats"]


class IOStats:
    """Mutable counter bundle for page-level I/O.

    Attributes
    ----------
    disk_reads:
        Pages fetched from the backing store (buffer misses).  This is the
        paper's "disk accesses" figure.
    disk_writes:
        Pages written back to the store (dirty evictions + explicit flushes).
    buffer_hits:
        Page requests satisfied from the buffer pool.
    buffer_misses:
        Page requests that had to go to the store.  Equal to ``disk_reads``
        for read-only workloads; kept separate so write-path accounting
        stays honest.
    evictions:
        Pages pushed out of the buffer pool to make room (clean or dirty).
    """

    FIELDS = (
        "disk_reads",
        "disk_writes",
        "buffer_hits",
        "buffer_misses",
        "evictions",
    )

    __slots__ = ("registry", "prefix", "_counters", "_history")

    if TYPE_CHECKING:
        # The field accessors are generated properties (see the
        # ``setattr`` loop below the class); declare them for type
        # checkers, which cannot follow the loop.
        disk_reads: int
        disk_writes: int
        buffer_hits: int
        buffer_misses: int
        evictions: int

    def __init__(self, disk_reads: int = 0, disk_writes: int = 0,
                 buffer_hits: int = 0, buffer_misses: int = 0,
                 evictions: int = 0, *,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "io") -> None:
        #: Backing registry; private per instance unless one is passed in.
        #: Two IOStats sharing a registry *and* prefix alias the same
        #: counters — that is the "one registry" aggregation mode.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters: dict[str, Counter] = {
            name: self.registry.counter(f"{prefix}.{name}")
            for name in self.FIELDS
        }
        self._history: list["IOStats"] = []
        for name, value in zip(self.FIELDS, (disk_reads, disk_writes,
                                             buffer_hits, buffer_misses,
                                             evictions)):
            if value:
                self._counters[name].inc(value)

    # Field accessors are generated below the class body: one property per
    # FIELDS entry, reading/writing the backing counter's value.

    def reset(self) -> None:
        """Zero all counters (history is preserved)."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> "IOStats":
        """A history-free copy of the current counts.

        The copy owns a fresh private registry and an empty history: it
        shares *no* state with this instance, so it can be stored, added,
        or mutated without ever affecting live accounting.
        """
        return IOStats(**self.as_dict())

    def checkpoint(self) -> None:
        """Append a snapshot to the history, then reset."""
        self._history.append(self.snapshot())
        self.reset()

    @property
    def history(self) -> tuple["IOStats", ...]:
        return tuple(self._history)

    @property
    def total_accesses(self) -> int:
        """Reads + writes: total page traffic to the store."""
        return self.disk_reads + self.disk_writes

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from the buffer (0 when idle)."""
        total = self.buffer_hits + self.buffer_misses
        if total == 0:
            return 0.0
        return self.buffer_hits / total

    def as_dict(self) -> dict[str, int]:
        """Plain ``{field: count}`` dict (the metrics-export form)."""
        return {name: self._counters[name].value for name in self.FIELDS}

    def __add__(self, other: "IOStats") -> "IOStats":
        if not isinstance(other, IOStats):
            return NotImplemented
        mine, theirs = self.as_dict(), other.as_dict()
        return IOStats(**{k: mine[k] + theirs[k] for k in self.FIELDS})

    def __iadd__(self, other: "IOStats") -> "IOStats":
        """Accumulate ``other`` in place (registry binding and history
        are kept; only the counter values change)."""
        if not isinstance(other, IOStats):
            return NotImplemented
        for name, value in other.as_dict().items():
            if value:
                self._counters[name].inc(value)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"IOStats({body})"


def _field_property(name: str) -> property:
    def _get(self: IOStats) -> int:
        return self._counters[name].value

    def _set(self: IOStats, value: int) -> None:
        self._counters[name].value = int(value)

    return property(_get, _set, doc=f"Backed by the ``io.{name}`` counter.")


for _name in IOStats.FIELDS:
    setattr(IOStats, _name, _field_property(_name))
del _name
