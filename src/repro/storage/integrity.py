"""Page integrity: CRC32C checksums, page trailers, and the superblock.

The paper's experiments run the buffer manager over a raw disk partition,
which makes silent corruption a real failure mode: a torn write or a single
flipped bit would previously decode as garbage (or, worse, as a plausible
node).  This module supplies the two on-disk structures that make a
:class:`~repro.storage.store.FilePageStore` self-verifying:

* a fixed-size **page trailer** stamped into the zero padding at the end of
  every page, holding a format version, the page's own id and a CRC32C of
  the payload — verified on every read, so corruption is detected *before*
  the page codec ever sees the bytes;
* a **superblock** describing the store (page size, durability flags,
  committed page count) and the tree it holds (height, root page, ndim,
  capacity, size).  Two shadow slots are written alternately with a
  monotonically increasing sequence number, so a superblock update is
  atomic: a torn slot fails its CRC and the previous slot wins.

Checksums use CRC32C (Castagnoli) — the polynomial used by ext4, btrfs and
iSCSI — implemented here as a dependency-free slice-by-4 table lookup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "IntegrityError",
    "ChecksumError",
    "SuperblockError",
    "crc32c",
    "TRAILER_SIZE",
    "TRAILER_VERSION",
    "stamp_trailer",
    "verify_trailer",
    "trailer_info",
    "Superblock",
    "SUPERBLOCK_MAGIC",
    "SUPERBLOCK_SLOTS",
    "FLAG_CHECKSUMS",
    "FLAG_JOURNAL",
    "looks_like_superblock",
]


class IntegrityError(RuntimeError):
    """Base class for on-disk integrity failures."""


class ChecksumError(IntegrityError):
    """A page trailer is missing, malformed, or fails its CRC."""


class SuperblockError(IntegrityError):
    """No valid superblock slot could be decoded."""


# -- CRC32C (Castagnoli), slice-by-4 ----------------------------------------

_POLY = 0x82F63B78  # reflected 0x1EDC6F41


def _make_tables() -> tuple[tuple[int, ...], ...]:
    t0 = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        t0.append(crc)
    tables = [t0]
    for _ in range(3):
        prev = tables[-1]
        tables.append([t0[v & 0xFF] ^ (v >> 8) for v in prev])
    return tuple(tuple(t) for t in tables)


_T0, _T1, _T2, _T3 = _make_tables()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C of ``data``, continuing from ``value`` (0 for a fresh sum)."""
    crc = value ^ 0xFFFFFFFF
    mv = memoryview(data)
    n = len(mv) - (len(mv) % 4)
    for i in range(0, n, 4):
        crc ^= mv[i] | (mv[i + 1] << 8) | (mv[i + 2] << 16) | (mv[i + 3] << 24)
        crc = (_T3[crc & 0xFF] ^ _T2[(crc >> 8) & 0xFF]
               ^ _T1[(crc >> 16) & 0xFF] ^ _T0[(crc >> 24) & 0xFF])
    for i in range(n, len(mv)):
        crc = _T0[(crc ^ mv[i]) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# -- page trailer ------------------------------------------------------------

TRAILER_MAGIC = 0x4C525452  # "RTRL" little-endian
TRAILER_VERSION = 1

#: magic, version, flags, page_id — the CRC covers payload + these bytes.
_TRAILER_PREFIX = struct.Struct("<IHHq")
_TRAILER_CRC = struct.Struct("<I")

#: Trailer bytes reserved at the end of every checksummed page (the prefix,
#: the CRC, and 4 bytes of padding to keep the total 8-byte aligned).
TRAILER_SIZE = _TRAILER_PREFIX.size + _TRAILER_CRC.size + 4


def stamp_trailer(page: bytes, page_id: int) -> bytes:
    """Return ``page`` with its last :data:`TRAILER_SIZE` bytes replaced by
    a trailer binding the payload checksum to this ``page_id``.

    The caller guarantees the trailer region is free (zero padding); the
    store enforces that before calling.
    """
    payload = page[:len(page) - TRAILER_SIZE]
    prefix = _TRAILER_PREFIX.pack(TRAILER_MAGIC, TRAILER_VERSION, 0, page_id)
    crc = crc32c(prefix, crc32c(payload))
    return payload + prefix + _TRAILER_CRC.pack(crc) + b"\x00" * 4


def trailer_info(page: bytes) -> dict:
    """Decode a page's trailer fields without verifying (fsck reporting)."""
    base = len(page) - TRAILER_SIZE
    magic, version, flags, page_id = _TRAILER_PREFIX.unpack_from(page, base)
    (crc,) = _TRAILER_CRC.unpack_from(page, base + _TRAILER_PREFIX.size)
    return {"magic": magic, "version": version, "flags": flags,
            "page_id": page_id, "crc": crc}


def verify_trailer(page: bytes, page_id: int, *, source: str = "") -> bytes:
    """Check the trailer of ``page``; return the payload zero-padded back to
    a full page (the exact bytes the writer handed to the store).

    Raises :class:`ChecksumError` naming the page, the store, and the
    observed vs expected values when anything is off.
    """
    where = f"page {page_id}" + (f" of {source}" if source else "")
    if len(page) <= TRAILER_SIZE:
        raise ChecksumError(f"{where}: {len(page)}-byte page has no room "
                            f"for a {TRAILER_SIZE}-byte trailer")
    info = trailer_info(page)
    if info["magic"] != TRAILER_MAGIC:
        raise ChecksumError(
            f"{where}: no checksum trailer (magic 0x{info['magic']:08x}, "
            f"expected 0x{TRAILER_MAGIC:08x}) — page never written, or "
            f"written without checksums"
        )
    if info["version"] != TRAILER_VERSION:
        raise ChecksumError(
            f"{where}: unsupported trailer version {info['version']} "
            f"(this build reads version {TRAILER_VERSION})"
        )
    if info["page_id"] != page_id:
        raise ChecksumError(
            f"{where}: trailer claims page id {info['page_id']} — page "
            f"image stored at the wrong slot"
        )
    payload = page[:len(page) - TRAILER_SIZE]
    prefix = _TRAILER_PREFIX.pack(TRAILER_MAGIC, TRAILER_VERSION,
                                  info["flags"], page_id)
    want = crc32c(prefix, crc32c(payload))
    if want != info["crc"]:
        raise ChecksumError(
            f"{where}: CRC32C mismatch (stored 0x{info['crc']:08x}, "
            f"computed 0x{want:08x}) — page is corrupt"
        )
    return payload + b"\x00" * TRAILER_SIZE


# -- superblock ---------------------------------------------------------------

SUPERBLOCK_MAGIC = 0x50555352  # "RSUP" little-endian
SUPERBLOCK_VERSION = 1

#: Number of shadow slots (physical pages reserved at the front of the file).
SUPERBLOCK_SLOTS = 2

FLAG_CHECKSUMS = 1
FLAG_JOURNAL = 2

# magic, version, flags, page_size, seq, page_count,
# has_tree, height, root_page, ndim, capacity, size
_SUPER = struct.Struct("<IHHIQQBiqiiq")
_SUPER_CRC = struct.Struct("<I")

#: Keys of the tree-metadata dict carried by the superblock.
TREE_META_KEYS = ("height", "root_page", "ndim", "capacity", "size")


@dataclass
class Superblock:
    """Decoded store header; ``tree`` is ``None`` until a build commits."""

    page_size: int
    flags: int = 0
    seq: int = 1
    page_count: int = 0
    tree: dict | None = None

    @property
    def slot(self) -> int:
        """The shadow slot this sequence number lands in."""
        return self.seq % SUPERBLOCK_SLOTS

    def encode(self) -> bytes:
        """Serialise into exactly ``page_size`` bytes (CRC-protected)."""
        tree = self.tree if self.tree is not None else {}
        body = _SUPER.pack(
            SUPERBLOCK_MAGIC, SUPERBLOCK_VERSION, self.flags,
            self.page_size, self.seq, self.page_count,
            1 if self.tree is not None else 0,
            int(tree.get("height", 0)), int(tree.get("root_page", 0)),
            int(tree.get("ndim", 0)), int(tree.get("capacity", 0)),
            int(tree.get("size", 0)),
        )
        body += _SUPER_CRC.pack(crc32c(body))
        if len(body) > self.page_size:
            raise SuperblockError(
                f"page size {self.page_size} too small for a superblock "
                f"({len(body)} bytes)"
            )
        return body + b"\x00" * (self.page_size - len(body))

    @classmethod
    def decode(cls, data: bytes, *, source: str = "") -> "Superblock":
        """Inverse of :meth:`encode`; raises :class:`SuperblockError`."""
        where = f"superblock of {source}" if source else "superblock"
        if len(data) < _SUPER.size + _SUPER_CRC.size:
            raise SuperblockError(f"{where}: truncated at {len(data)} bytes")
        (magic, version, flags, page_size, seq, page_count,
         has_tree, height, root_page, ndim, capacity, size
         ) = _SUPER.unpack_from(data, 0)
        if magic != SUPERBLOCK_MAGIC:
            raise SuperblockError(
                f"{where}: bad magic 0x{magic:08x} "
                f"(expected 0x{SUPERBLOCK_MAGIC:08x})"
            )
        if version != SUPERBLOCK_VERSION:
            raise SuperblockError(
                f"{where}: unsupported version {version} "
                f"(this build reads version {SUPERBLOCK_VERSION})"
            )
        (crc,) = _SUPER_CRC.unpack_from(data, _SUPER.size)
        want = crc32c(data[:_SUPER.size])
        if crc != want:
            raise SuperblockError(
                f"{where}: CRC32C mismatch (stored 0x{crc:08x}, "
                f"computed 0x{want:08x})"
            )
        tree = None
        if has_tree:
            tree = {"height": height, "root_page": root_page, "ndim": ndim,
                    "capacity": capacity, "size": size}
        return cls(page_size=page_size, flags=flags, seq=seq,
                   page_count=page_count, tree=tree)


def looks_like_superblock(head: bytes) -> bool:
    """Cheap sniff: do these leading bytes start a durable store?"""
    return (len(head) >= 4
            and int.from_bytes(head[:4], "little") == SUPERBLOCK_MAGIC)
