"""Binary page format for R-tree nodes.

The paper assumes "exactly one node fits per disk page" and uses the two
terms interchangeably; so do we.  A node page holds a small header plus up
to ``capacity`` entries, each entry being a child pointer (page id at
internal levels, data object id at the leaf level) and a k-dimensional
rectangle.

Layout (little-endian)::

    offset  size  field
    0       4     magic  (0x52545031, "RTP1")
    4       4     level  (0 = leaf)
    8       4     entry count
    12      4     ndim
    16      -     entries: count x (int64 child, k float64 lo, k float64 hi)

Pages are fixed-size; the tail beyond the last entry is zero padding.  The
codec round-trips through real bytes so the :class:`~repro.storage.store.FilePageStore`
path exercises genuine serialisation, not pickled Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
import struct

import numpy as np

from ..core.geometry import RectArray

__all__ = [
    "PageFormatError",
    "NodePage",
    "entry_size",
    "required_page_size",
    "encode_node",
    "decode_node",
]

_MAGIC = 0x52545031
_HEADER = struct.Struct("<iiii")


class PageFormatError(ValueError):
    """Raised when a page fails to decode or exceeds its size budget."""


def entry_size(ndim: int) -> int:
    """Bytes per entry: int64 pointer + 2k float64 coordinates."""
    if ndim < 1:
        raise PageFormatError("ndim must be >= 1")
    return 8 + 16 * ndim


def required_page_size(capacity: int, ndim: int, *, align: int = 512) -> int:
    """Smallest aligned page size holding ``capacity`` entries.

    With the paper's parameters (capacity 100, 2-D) this is 4096 bytes —
    a standard disk page.
    """
    if capacity < 1:
        raise PageFormatError("capacity must be >= 1")
    raw = _HEADER.size + capacity * entry_size(ndim)
    if align <= 0:
        return raw
    return ((raw + align - 1) // align) * align


@dataclass(frozen=True)
class NodePage:
    """Decoded contents of one node page.

    ``children[i]`` is the page id of the i-th subtree at internal levels
    and an opaque data-object id at the leaf level (``level == 0``).
    ``rects[i]`` is the MBR stored alongside that pointer.
    """

    level: int
    children: np.ndarray  # (count,) int64
    rects: RectArray

    def __post_init__(self) -> None:
        if self.level < 0:
            raise PageFormatError(f"negative level {self.level}")
        kids = np.asarray(self.children, dtype=np.int64)
        if kids.ndim != 1:
            raise PageFormatError("children must be 1-D")
        if len(kids) != len(self.rects):
            raise PageFormatError(
                f"{len(kids)} children but {len(self.rects)} rects"
            )
        if len(kids) == 0:
            raise PageFormatError("a node page must hold at least one entry")
        object.__setattr__(self, "children", kids)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def count(self) -> int:
        return len(self.children)

    @property
    def ndim(self) -> int:
        return self.rects.ndim


def encode_node(node: NodePage, page_size: int) -> bytes:
    """Serialise a node into exactly ``page_size`` bytes."""
    ndim = node.ndim
    body_len = _HEADER.size + node.count * entry_size(ndim)
    if body_len > page_size:
        raise PageFormatError(
            f"{node.count} entries x {entry_size(ndim)}B do not fit in a "
            f"{page_size}B page"
        )
    header = _HEADER.pack(_MAGIC, node.level, node.count, ndim)
    # Interleave per entry (child, lo..., hi...) into one 64-bit-word buffer;
    # children are packed bit-exactly via a uint64 view.
    raw = np.empty(node.count * (1 + 2 * ndim), dtype=np.uint64)
    raw_f = raw.view(np.float64)
    stride = 1 + 2 * ndim
    raw[0::stride] = node.children.view(np.uint64)
    for d in range(ndim):
        raw_f[1 + d::stride] = node.rects.los[:, d]
        raw_f[1 + ndim + d::stride] = node.rects.his[:, d]
    body = header + raw.tobytes()
    return body + b"\x00" * (page_size - len(body))


def decode_node(data: bytes, *, page_id: int | None = None,
                source: str | None = None) -> NodePage:
    """Inverse of :func:`encode_node` (padding is ignored).

    ``page_id`` and ``source`` (the store path) are threaded into any
    :class:`PageFormatError` so a corrupt page can be located on disk; the
    raw header bytes are included so the failure is diagnosable from the
    message alone.
    """
    where = "page" if page_id is None else f"page {page_id}"
    if source:
        where += f" of {source}"
    if len(data) < _HEADER.size:
        raise PageFormatError(
            f"{where}: truncated at {len(data)} bytes "
            f"(header bytes: {data.hex()})"
        )
    magic, level, count, ndim = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise PageFormatError(
            f"{where}: bad magic 0x{magic:08x} (expected 0x{_MAGIC:08x}; "
            f"header bytes: {bytes(data[:_HEADER.size]).hex()})"
        )
    if level < 0 or count < 1 or ndim < 1:
        raise PageFormatError(
            f"{where}: corrupt header: level={level} count={count} "
            f"ndim={ndim} (header bytes: {bytes(data[:_HEADER.size]).hex()})"
        )
    stride = 1 + 2 * ndim
    need = _HEADER.size + count * entry_size(ndim)
    if len(data) < need:
        raise PageFormatError(
            f"{where}: holds {len(data)} bytes, header promises {need}"
        )
    raw = np.frombuffer(data, dtype=np.uint64, count=count * stride,
                        offset=_HEADER.size)
    raw_f = raw.view(np.float64)
    children = raw[0::stride].view(np.int64).copy()
    los = np.empty((count, ndim), dtype=np.float64)
    his = np.empty((count, ndim), dtype=np.float64)
    for d in range(ndim):
        los[:, d] = raw_f[1 + d::stride]
        his[:, d] = raw_f[1 + ndim + d::stride]
    return NodePage(level=level, children=children,
                    rects=RectArray(los, his, copy=False))
