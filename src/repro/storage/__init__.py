"""Storage substrate: pages, page stores, buffer pool, I/O accounting,
and the opt-in durability layer (checksums, journal, fault injection,
retry with jitter, circuit breaker)."""

from .breaker import CircuitBreaker
from .buffer import BufferPool, ClockPolicy, FIFOPolicy, LRUPolicy, make_policy
from .counters import IOStats
from .faults import (
    CrashPlan,
    FaultInjectingPageStore,
    FaultPlan,
    RetryPolicy,
    TransientIOError,
    flip_bit,
)
from .integrity import ChecksumError, IntegrityError, SuperblockError, crc32c
from .journal import JournalError, WriteJournal, journal_has_records, journal_path
from .mmap_store import MmapPageStore
from .page import NodePage, decode_node, encode_node, required_page_size
from .store import (
    FilePageStore,
    MemoryPageStore,
    PageStore,
    SimulatedCrash,
    StoreError,
    StoreUnavailable,
)
from .striped import StripedPageStore

__all__ = [
    "BufferPool",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "make_policy",
    "IOStats",
    "NodePage",
    "encode_node",
    "decode_node",
    "required_page_size",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
    "MmapPageStore",
    "StripedPageStore",
    "StoreError",
    "StoreUnavailable",
    "SimulatedCrash",
    "CircuitBreaker",
    "IntegrityError",
    "ChecksumError",
    "SuperblockError",
    "crc32c",
    "JournalError",
    "WriteJournal",
    "journal_path",
    "journal_has_records",
    "CrashPlan",
    "FaultPlan",
    "FaultInjectingPageStore",
    "RetryPolicy",
    "TransientIOError",
    "flip_bit",
]
