"""Storage substrate: pages, page stores, buffer pool, I/O accounting."""

from .buffer import BufferPool, ClockPolicy, FIFOPolicy, LRUPolicy, make_policy
from .counters import IOStats
from .page import NodePage, decode_node, encode_node, required_page_size
from .store import FilePageStore, MemoryPageStore, PageStore
from .striped import StripedPageStore

__all__ = [
    "BufferPool",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "make_policy",
    "IOStats",
    "NodePage",
    "encode_node",
    "decode_node",
    "required_page_size",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
    "StripedPageStore",
]
