"""Buffer pool with pluggable replacement policies.

The paper runs every experiment through an LRU buffer of a configurable
number of pages and counts buffer misses as disk accesses.  The
:class:`BufferPool` here reproduces that measurement: it caches *decoded*
page values keyed by page id, but hit/miss accounting is strictly per page,
so the numbers are identical to caching raw bytes.

LRU is the paper's policy.  FIFO and CLOCK are provided for the buffering
ablation (the paper discusses — citing its companion study [8] — pinning
the upper tree levels versus plain LRU; ``pin``/``unpin`` support that
experiment directly).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

from .counters import IOStats

__all__ = [
    "BufferError",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "BufferPool",
    "make_policy",
    "POLICIES",
]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class BufferError(RuntimeError):
    """Raised on capacity misuse (e.g. everything pinned, nothing evictable)."""


class ReplacementPolicy(abc.ABC, Generic[K]):
    """Strategy deciding which resident page to evict.

    The pool informs the policy of every access/insert/removal; the policy
    only ever sees keys, never values.
    """

    @abc.abstractmethod
    def on_insert(self, key: K) -> None:
        """A new page became resident."""

    @abc.abstractmethod
    def on_access(self, key: K) -> None:
        """A resident page was referenced."""

    @abc.abstractmethod
    def on_remove(self, key: K) -> None:
        """A page was removed (evicted or invalidated)."""

    @abc.abstractmethod
    def victim(self, pinned: frozenset[K]) -> K:
        """Choose a non-pinned resident page to evict."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Forget all residency state."""


class LRUPolicy(ReplacementPolicy[K]):
    """Least-recently-used — the paper's replacement policy."""

    def __init__(self) -> None:
        self._order: OrderedDict[K, None] = OrderedDict()

    def on_insert(self, key: K) -> None:
        self._order[key] = None

    def on_access(self, key: K) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: K) -> None:
        self._order.pop(key, None)

    def victim(self, pinned: frozenset[K]) -> K:
        for key in self._order:
            if key not in pinned:
                return key
        raise BufferError("all resident pages are pinned")

    def clear(self) -> None:
        self._order.clear()


class FIFOPolicy(ReplacementPolicy[K]):
    """First-in-first-out: accesses do not refresh residency."""

    def __init__(self) -> None:
        self._order: OrderedDict[K, None] = OrderedDict()

    def on_insert(self, key: K) -> None:
        self._order[key] = None

    def on_access(self, key: K) -> None:
        pass

    def on_remove(self, key: K) -> None:
        self._order.pop(key, None)

    def victim(self, pinned: frozenset[K]) -> K:
        for key in self._order:
            if key not in pinned:
                return key
        raise BufferError("all resident pages are pinned")

    def clear(self) -> None:
        self._order.clear()


class ClockPolicy(ReplacementPolicy[K]):
    """Second-chance (CLOCK) approximation of LRU."""

    def __init__(self) -> None:
        self._ref: OrderedDict[K, bool] = OrderedDict()

    def on_insert(self, key: K) -> None:
        self._ref[key] = False

    def on_access(self, key: K) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_remove(self, key: K) -> None:
        self._ref.pop(key, None)

    def victim(self, pinned: frozenset[K]) -> K:
        # Sweep the hand; give referenced pages a second chance.
        for _ in range(2 * len(self._ref) + 1):
            key = next(iter(self._ref))
            referenced = self._ref.pop(key)
            if key in pinned:
                self._ref[key] = referenced
                continue
            if referenced:
                self._ref[key] = False
                continue
            self._ref[key] = False  # keep state consistent for on_remove
            return key
        raise BufferError("all resident pages are pinned")

    def clear(self) -> None:
        self._ref.clear()


POLICIES: dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``clock``)."""
    try:
        return POLICIES[name.lower()]()
    except KeyError:
        raise BufferError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None


class BufferPool(Generic[K, V]):
    """A fixed-capacity page cache with miss accounting.

    Parameters
    ----------
    capacity:
        Number of pages the buffer holds (the paper's "buffer size").
    fetch:
        Called on a miss with the page key; must return the page value.
        The pool records the miss; the *fetch function itself* (normally a
        :meth:`PageStore.read_page` wrapper sharing the same ``stats``)
        records the disk read, so reads are never double-counted.
    stats:
        Shared :class:`IOStats`; created if omitted.
    policy:
        A policy name or a :class:`ReplacementPolicy` instance.
    writeback:
        Optional ``(key, value) -> None`` invoked when a *dirty* page is
        evicted or flushed; each call counts one disk write.
    """

    def __init__(
        self,
        capacity: int,
        fetch: Callable[[K], V],
        *,
        stats: IOStats | None = None,
        policy: str | ReplacementPolicy = "lru",
        writeback: Callable[[K, V], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise BufferError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._fetch = fetch
        self._writeback = writeback
        self._policy = policy if isinstance(policy, ReplacementPolicy) \
            else make_policy(policy)
        self._pages: dict[K, V] = {}
        self._dirty: set[K] = set()
        self._pinned: dict[K, int] = {}

    # -- core interface -----------------------------------------------------

    def get(self, key: K) -> V:
        """Return the page value, fetching (and counting a read) on miss."""
        if key in self._pages:
            self.stats.buffer_hits += 1
            self._policy.on_access(key)
            return self._pages[key]
        self.stats.buffer_misses += 1
        value = self._fetch(key)
        self._admit(key, value)
        return value

    def put(self, key: K, value: V, *, dirty: bool = True) -> None:
        """Install/overwrite a page without a fetch (write path)."""
        if key in self._pages:
            self._pages[key] = value
            self._policy.on_access(key)
        else:
            self._admit(key, value)
        if dirty:
            self._dirty.add(key)

    def contains(self, key: K) -> bool:
        """Residency check with no side effects on the policy."""
        return key in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    # -- pinning --------------------------------------------------------------

    def pin(self, key: K) -> None:
        """Make a page ineligible for eviction (fetching it if absent)."""
        if key not in self._pages:
            self.get(key)
        self._pinned[key] = self._pinned.get(key, 0) + 1

    def unpin(self, key: K) -> None:
        """Release one pin; the page becomes evictable at zero pins."""
        count = self._pinned.get(key, 0)
        if count <= 0:
            raise BufferError(f"page {key!r} is not pinned")
        if count == 1:
            del self._pinned[key]
        else:
            self._pinned[key] = count - 1

    @property
    def pinned_keys(self) -> frozenset[K]:
        return frozenset(self._pinned)

    # -- maintenance ---------------------------------------------------------

    def flush(self) -> None:
        """Write back all dirty pages (they stay resident)."""
        for key in sorted(self._dirty, key=repr):
            self._write_out(key)
        self._dirty.clear()

    def invalidate(self, key: K) -> None:
        """Drop a page without writeback (caller owns durability)."""
        if key in self._pages:
            del self._pages[key]
            self._dirty.discard(key)
            self._pinned.pop(key, None)
            self._policy.on_remove(key)

    def clear(self) -> None:
        """Write back dirty pages, then empty the pool."""
        self.flush()
        self._pages.clear()
        self._dirty.clear()
        self._pinned.clear()
        self._policy.clear()

    def reset_stats(self) -> None:
        """Zero the shared hit/miss counters."""
        self.stats.reset()

    # -- internals -----------------------------------------------------------

    def _admit(self, key: K, value: V) -> None:
        while len(self._pages) >= self.capacity:
            self._evict_one()
        self._pages[key] = value
        self._policy.on_insert(key)

    def _evict_one(self) -> None:
        victim = self._policy.victim(frozenset(self._pinned))
        if victim in self._dirty:
            self._write_out(victim)
            self._dirty.discard(victim)
        del self._pages[victim]
        self._policy.on_remove(victim)
        self.stats.evictions += 1

    def _write_out(self, key: K) -> None:
        if self._writeback is None:
            raise BufferError(
                f"dirty page {key!r} but the pool has no writeback function"
            )
        self._writeback(key, self._pages[key])
