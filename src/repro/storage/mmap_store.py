"""Read-only mmap-backed page store for multi-process serving.

STR-packed trees are immutable once :func:`~repro.rtree.bulk.bulk_load`
has committed, which makes their page files trivially shareable
read-only across processes: every serving worker can ``mmap`` the same
generation file and let the OS page cache hold exactly one copy of every
hot page, instead of each process pulling private copies through a
buffer pool's ``read`` calls.

:class:`MmapPageStore` is that sharing primitive:

* **Read-only by construction** — :meth:`allocate` and ``write_page``
  raise :class:`~repro.storage.store.StoreError`; the file can never be
  perturbed by a serving worker, no matter how it crashes.
* **Self-describing** — a durable file's superblock supplies the page
  size, durability flags and committed tree metadata, so
  :meth:`~repro.rtree.paged.PagedRTree.from_store` works unchanged;
  plain page files just need an explicit ``page_size``.
* **CRC-verified on first touch** — the first read of each checksummed
  page runs the full trailer verification; later reads of the same page
  skip it (the mapping is read-only and the file immutable, so the
  bytes cannot have changed).  A flipped at-rest bit is therefore still
  a loud :class:`~repro.storage.integrity.ChecksumError`, but steady-
  state serving pays zero checksum arithmetic.
* **Byte-identical reads** — :meth:`read_page` returns exactly what a
  :class:`~repro.storage.store.FilePageStore` would return for the same
  page (checksummed pages come back payload-first with the trailer
  bytes zeroed), so the two backends are interchangeable under every
  searcher, fsck pass and fault-injection wrapper.

A journalled file whose sidecar still holds unreplayed records is
refused: recovery is a *write*, which only
:meth:`~repro.storage.store.FilePageStore.open_existing` may perform.
"""

from __future__ import annotations

import mmap
import os
from typing import TYPE_CHECKING

from .counters import IOStats
from .integrity import (
    FLAG_CHECKSUMS,
    FLAG_JOURNAL,
    SUPERBLOCK_SLOTS,
    TRAILER_SIZE,
    ChecksumError,
    looks_like_superblock,
    verify_trailer,
)
from .journal import journal_has_records, journal_path
from .store import PageStore, StoreError, _find_superblock

if TYPE_CHECKING:  # pragma: no cover - import cycle (see store.py)
    from .breaker import CircuitBreaker
    from .faults import RetryPolicy

__all__ = ["MmapPageStore"]


class MmapPageStore(PageStore):
    """Read-only page store over one memory-mapped page file.

    Parameters
    ----------
    path:
        The page file.  A durable file (superblock magic at offset 0)
        describes itself; a plain file needs ``page_size``.
    page_size:
        Required for plain files; optional for durable files (when
        given it must match the superblock).
    verify:
        Verify checksummed pages' CRC trailers on first touch
        (default).  ``False`` trusts the file — for oracles that
        already fsck'd it.
    """

    def __init__(self, path: str | os.PathLike[str],
                 page_size: int | None = None,
                 stats: IOStats | None = None, *,
                 verify: bool = True,
                 retry: "RetryPolicy | None" = None,
                 breaker: "CircuitBreaker | None" = None) -> None:
        self._path = os.fspath(path)
        with open(self._path, "rb") as probe:
            head = probe.read(4)
        durable = looks_like_superblock(head)
        if durable:
            sb = _find_superblock(self._path)
            if page_size is not None and page_size != sb.page_size:
                raise StoreError(
                    f"{self._path}: superblock page size {sb.page_size} "
                    f"!= requested {page_size}"
                )
            page_size = sb.page_size
            self._flags = sb.flags
            self._count = sb.page_count
            self._tree_meta: dict | None = sb.tree
            self._reserved = SUPERBLOCK_SLOTS
        else:
            if page_size is None:
                raise StoreError(
                    f"{self._path}: no superblock — a plain page file "
                    f"needs an explicit page_size"
                )
            size = os.path.getsize(self._path)
            if size % page_size:
                raise StoreError(
                    f"{self._path}: size {size} is not a multiple of "
                    f"page size {page_size}"
                )
            self._flags = 0
            self._count = size // page_size
            self._tree_meta = None
            self._reserved = 0
        super().__init__(page_size, stats, retry=retry, breaker=breaker)
        if self._flags & FLAG_JOURNAL and journal_has_records(
                journal_path(self._path)):
            raise StoreError(
                f"{self._path}: write journal holds unreplayed records — "
                f"recover it with FilePageStore.open_existing (or repro "
                f"fsck) before serving read-only"
            )
        self.checksums = bool(self._flags & FLAG_CHECKSUMS)
        self._verify = verify and self.checksums
        #: Page ids whose trailer has been verified (first-touch cache).
        self._verified: set[int] = set()
        self.checksum_failures = 0
        self._closed = False
        self._file = open(self._path, "rb")
        try:
            self._map: mmap.mmap | None = None
            if os.fstat(self._file.fileno()).st_size > 0:
                self._map = mmap.mmap(self._file.fileno(), 0,
                                      access=mmap.ACCESS_READ)
        except BaseException:
            self._file.close()
            raise

    # -- properties -----------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_count(self) -> int:
        return self._count

    @property
    def payload_size(self) -> int:
        if self.checksums:
            return self.page_size - TRAILER_SIZE
        return self.page_size

    @property
    def supports_tree_meta(self) -> bool:
        """Durable files carry tree metadata in their superblock."""
        return self._reserved > 0

    @property
    def tree_meta(self) -> dict | None:
        """Committed tree metadata from the superblock, or ``None``."""
        return dict(self._tree_meta) if self._tree_meta is not None else None

    @property
    def verified_pages(self) -> int:
        """Pages whose CRC trailer has been checked so far."""
        return len(self._verified)

    # -- page access ----------------------------------------------------------

    def allocate(self) -> int:
        raise StoreError(f"{self._path}: MmapPageStore is read-only")

    def _data_offset(self, page_id: int) -> int:
        return (self._reserved + page_id) * self.page_size

    def _image(self, page_id: int) -> bytes:
        """The raw on-disk page image, zero-padded past EOF."""
        self._ensure_open()
        offset = self._data_offset(page_id)
        end = min(offset + self.page_size,
                  len(self._map) if self._map is not None else 0)
        data = bytes(self._map[offset:end]) if (
            self._map is not None and end > offset) else b""
        if len(data) != self.page_size:
            if self._reserved == 0:
                raise StoreError(f"short read on page {page_id}")
            # Durable counts come from the superblock; an allocated page
            # past EOF reads as never-written zeros and fails the
            # checksum verification with a precise error below.
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def _read(self, page_id: int) -> bytes:
        data = self._image(page_id)
        if not self.checksums:
            return data
        if self._verify and page_id not in self._verified:
            try:
                data = verify_trailer(data, page_id, source=self._path)
            except ChecksumError:
                self.checksum_failures += 1
                raise
            self._verified.add(page_id)
            return data
        # Already verified (or verification disabled): return the exact
        # bytes a FilePageStore read would — payload with the trailer
        # region zeroed back out.
        return data[:self.page_size - TRAILER_SIZE] + b"\x00" * TRAILER_SIZE

    def _write(self, page_id: int, data: bytes) -> None:
        raise StoreError(f"{self._path}: MmapPageStore is read-only")

    def raw_read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        return self._image(page_id)

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._map is not None:
            self._map.close()
        self._file.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(f"{self._path} is closed")
