"""Double-write journal: torn-write-proof page updates.

A torn write — a crash that leaves only a prefix of a page on disk — is
the one failure a per-page checksum can detect but not repair.  The fix is
the classic double-write protocol (InnoDB's doublewrite buffer, Postgres
full-page writes): before a page image is written in place, the *complete*
image is appended to a side journal together with its CRC32C.  Only then
does the in-place write start.  On reopen after a crash:

* a record that is fully present and passes its CRC is **replayed** — the
  in-place write it guarded may have been torn, and rewriting the journaled
  image makes the page whole again (replay is idempotent);
* a truncated or CRC-failing record marks the crash point *inside the
  journal append itself* — the guarded in-place write never started, so
  the record and everything after it is **discarded**.

The journal is truncated back to its header at every checkpoint (flush /
clean close), so steady-state cost is one extra sequential write per page
update.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Callable, Iterator

from .integrity import crc32c

__all__ = ["JournalError", "WriteJournal", "journal_path",
           "journal_has_records"]

_FILE_MAGIC = 0x4C4E4A52   # "RJNL" little-endian
_RECORD_MAGIC = 0x43524A52  # "RJRC" little-endian
_FILE_HEADER = struct.Struct("<IHHI")   # magic, version, reserved, page_size
_RECORD_HEADER = struct.Struct("<IqI")  # magic, page_id, payload crc
_VERSION = 1


class JournalError(RuntimeError):
    """The journal file itself is unusable (bad header, wrong page size)."""


def journal_path(store_path: str | os.PathLike) -> str:
    """The journal sidecar for a page-store file."""
    return os.fspath(store_path) + ".journal"


def journal_has_records(path: str | os.PathLike) -> bool:
    """Does the journal at ``path`` hold unreplayed (or torn) records?

    ``False`` for a missing or checkpointed (header-only) journal.
    Read-only openers (:class:`~repro.storage.mmap_store.MmapPageStore`)
    use this to refuse files that still need write-side recovery.
    """
    try:
        size = os.path.getsize(os.fspath(path))
    except OSError:
        return False
    return size > _FILE_HEADER.size


class WriteJournal:
    """Append-only intent log of full page images.

    ``write_fn`` is the store's physical-write hook: every byte string
    headed for the file goes through ``write_fn(file, data)``, which is how
    the simulated-crash plans tear or abort journal appends (see
    :class:`~repro.storage.faults.CrashPlan`).
    """

    def __init__(self, path: str | os.PathLike, page_size: int, *,
                 sync: bool = False,
                 write_fn: Callable[[BinaryIO, bytes], None] | None = None
                 ) -> None:
        self.path = os.fspath(path)
        self.page_size = page_size
        self.sync = sync
        self._write_fn = (write_fn if write_fn is not None
                          else lambda f, data: f.write(data))
        exists = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if exists else "w+b")
        if exists and os.fstat(self._file.fileno()).st_size >= _FILE_HEADER.size:
            self._check_header()
        else:
            self._file.write(_FILE_HEADER.pack(_FILE_MAGIC, _VERSION, 0,
                                               page_size))
            self._file.flush()
        self._file.seek(0, os.SEEK_END)

    def _check_header(self) -> None:
        self._file.seek(0)
        head = self._file.read(_FILE_HEADER.size)
        magic, version, _, page_size = _FILE_HEADER.unpack(head)
        if magic != _FILE_MAGIC:
            raise JournalError(f"{self.path}: not a page journal "
                               f"(magic 0x{magic:08x})")
        if version != _VERSION:
            raise JournalError(f"{self.path}: unsupported journal "
                               f"version {version}")
        if page_size != self.page_size:
            raise JournalError(
                f"{self.path}: journal page size {page_size} != "
                f"store page size {self.page_size}"
            )

    # -- writing --------------------------------------------------------------

    def append(self, page_id: int, image: bytes) -> None:
        """Log the intent to write ``image`` (a full physical page) at
        ``page_id``; durable (per ``sync``) before this returns."""
        if len(image) != self.page_size:
            raise JournalError(
                f"journal record for page {page_id}: {len(image)} bytes, "
                f"page size is {self.page_size}"
            )
        record = _RECORD_HEADER.pack(_RECORD_MAGIC, page_id,
                                     crc32c(image)) + image
        self._write_fn(self._file, record)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def checkpoint(self) -> None:
        """Drop all records: the guarded in-place writes are now durable."""
        self._file.truncate(_FILE_HEADER.size)
        self._file.seek(_FILE_HEADER.size)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    # -- recovery -------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(page_id, image)`` for every intact record, in order.

        Stops silently at the first torn or corrupt record — by the
        double-write protocol that record's in-place write never began, so
        nothing after it can matter.
        """
        self._file.seek(_FILE_HEADER.size)
        while True:
            head = self._file.read(_RECORD_HEADER.size)
            if len(head) < _RECORD_HEADER.size:
                return
            magic, page_id, crc = _RECORD_HEADER.unpack(head)
            if magic != _RECORD_MAGIC:
                return
            image = self._file.read(self.page_size)
            if len(image) < self.page_size or crc32c(image) != crc:
                return
            yield page_id, image
        # not reached

    @property
    def record_bytes(self) -> int:
        """Bytes of journal past the header (0 = checkpointed/empty)."""
        return max(0, os.fstat(self._file.fileno()).st_size
                   - _FILE_HEADER.size)

    def close(self) -> None:
        """Flush and release the journal file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def abandon(self) -> None:
        """Close without flushing (simulated-crash path)."""
        if not self._file.closed:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - flush of a torn buffer
                pass
