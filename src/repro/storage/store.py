"""Page stores: where node pages live when they are not buffered.

The paper implements its buffer manager over a *raw disk partition* so the
OS cannot "false-buffer" evicted pages.  We cannot require a raw partition
from library users, so two backends are provided:

* :class:`MemoryPageStore` — pages live in a dict of ``bytes``.  Since the
  comparison metric is the *count* of page fetches (not their latency), this
  backend reproduces the paper's measurements exactly while keeping
  laptop-scale experiments fast.  It is the default everywhere.
* :class:`FilePageStore` — pages live in a regular file accessed with
  explicit seeks; every miss is a real ``read`` and every eviction a real
  ``write``.  Used by the integration tests and available to users who want
  genuine I/O.

Both count traffic in the shared :class:`~repro.storage.counters.IOStats`.
"""

from __future__ import annotations

import abc
import os
from typing import Iterator

from .counters import IOStats

__all__ = ["StoreError", "PageStore", "MemoryPageStore", "FilePageStore"]


class StoreError(RuntimeError):
    """Raised for unknown pages, size mismatches, or closed stores."""


class PageStore(abc.ABC):
    """Abstract fixed-page-size storage device.

    Page ids are dense non-negative integers handed out by
    :meth:`allocate`.  Reads and writes always move whole pages.
    """

    def __init__(self, page_size: int, stats: IOStats | None = None):
        if page_size < 32:
            raise StoreError(f"page_size {page_size} is implausibly small")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()

    @abc.abstractmethod
    def allocate(self) -> int:
        """Reserve a new page id (contents undefined until written)."""

    @abc.abstractmethod
    def _read(self, page_id: int) -> bytes:
        ...

    @abc.abstractmethod
    def _write(self, page_id: int, data: bytes) -> None:
        ...

    @property
    @abc.abstractmethod
    def page_count(self) -> int:
        """Number of allocated pages."""

    def read_page(self, page_id: int, stats: IOStats | None = None) -> bytes:
        """Fetch one page, counting a disk read.

        ``stats`` overrides the store's default counter for this call —
        query executors pass their own so per-experiment accounting stays
        separate from build-time I/O.
        """
        self._check_id(page_id)
        (stats if stats is not None else self.stats).disk_reads += 1
        return self._read(page_id)

    def peek_page(self, page_id: int) -> bytes:
        """Fetch one page *without* counting (validation, stats, plots)."""
        self._check_id(page_id)
        return self._read(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Store one page, counting a disk write."""
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise StoreError(
                f"page {page_id}: got {len(data)} bytes, "
                f"page size is {self.page_size}"
            )
        self.stats.disk_writes += 1
        self._write(page_id, data)

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.page_count:
            raise StoreError(
                f"page {page_id} out of range [0, {self.page_count})"
            )

    def page_ids(self) -> Iterator[int]:
        """Iterate all allocated page ids in order."""
        return iter(range(self.page_count))

    def close(self) -> None:  # pragma: no cover - overridden where needed
        """Release any underlying resources."""

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryPageStore(PageStore):
    """In-memory page store (the default experiment backend)."""

    def __init__(self, page_size: int, stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._pages: list[bytes | None] = []

    def allocate(self) -> int:
        self._pages.append(None)
        return len(self._pages) - 1

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def _read(self, page_id: int) -> bytes:
        data = self._pages[page_id]
        if data is None:
            raise StoreError(f"page {page_id} allocated but never written")
        return data

    def _write(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = bytes(data)


class FilePageStore(PageStore):
    """Page store backed by a regular file with explicit per-page I/O.

    The file is opened in binary read/write mode and grows by exactly one
    page per :meth:`allocate`.  ``fsync`` on close guarantees the bytes are
    durable, which is as close to the paper's raw-partition setup as a
    portable library can get.
    """

    def __init__(self, path: str | os.PathLike, page_size: int,
                 stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._path = os.fspath(path)
        exists = os.path.exists(self._path)
        mode = "r+b" if exists else "w+b"
        self._file = open(self._path, mode)
        size = os.fstat(self._file.fileno()).st_size
        if size % page_size:
            self._file.close()
            raise StoreError(
                f"{self._path}: size {size} is not a multiple of "
                f"page size {page_size}"
            )
        self._count = size // page_size
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_count(self) -> int:
        return self._count

    def allocate(self) -> int:
        self._ensure_open()
        page_id = self._count
        self._count += 1
        # Extend the file so reads of unwritten-but-allocated pages fail at
        # the decode layer rather than returning short data.
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        return page_id

    def _read(self, page_id: int) -> bytes:
        self._ensure_open()
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StoreError(f"short read on page {page_id}")
        return data

    def _write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def flush(self) -> None:
        """Force buffered writes to durable storage (fsync)."""
        self._ensure_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(f"{self._path} is closed")
