"""Page stores: where node pages live when they are not buffered.

The paper implements its buffer manager over a *raw disk partition* so the
OS cannot "false-buffer" evicted pages.  We cannot require a raw partition
from library users, so two backends are provided:

* :class:`MemoryPageStore` — pages live in a dict of ``bytes``.  Since the
  comparison metric is the *count* of page fetches (not their latency), this
  backend reproduces the paper's measurements exactly while keeping
  laptop-scale experiments fast.  It is the default everywhere.
* :class:`FilePageStore` — pages live in a regular file accessed with
  explicit seeks; every miss is a real ``read`` and every eviction a real
  ``write``.  Used by the integration tests and available to users who want
  genuine I/O.

Both count traffic in the shared :class:`~repro.storage.counters.IOStats`.

Durability (opt-in, :class:`FilePageStore` only)
------------------------------------------------
A raw partition also means raw failure modes, so the file store has an
opt-in durability layer — see ``docs/durability.md`` for the protocol:

* ``checksums=True`` stamps a CRC32C trailer (page id + format version)
  into every page's padding and verifies it on every read, so a flipped
  bit or torn page is a loud :class:`~repro.storage.integrity.ChecksumError`
  instead of silently decoded garbage.
* ``journal=True`` makes page writes torn-write-proof with a double-write
  journal: the full image is logged (CRC-protected) before the in-place
  write, and reopening after a crash replays intact records / discards the
  torn tail.
* Either flag reserves two leading **superblock** slots, shadow-written
  alternately, holding the page size, the durability flags, the committed
  page count and the tree metadata — a durable file is self-describing
  (:meth:`FilePageStore.open_existing`).

With both flags off, layout and behaviour are byte-identical to the plain
store, so the paper's access counts cannot move.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, BinaryIO, Callable, Iterator, TypeVar

from ..obs import runtime as obs
from .counters import IOStats
from .integrity import (
    FLAG_CHECKSUMS,
    FLAG_JOURNAL,
    SUPERBLOCK_SLOTS,
    ChecksumError,
    Superblock,
    SuperblockError,
    TRAILER_SIZE,
    looks_like_superblock,
    stamp_trailer,
    verify_trailer,
)
from .journal import WriteJournal, journal_path

if TYPE_CHECKING:  # retry/crash plans live in faults, which imports us
    from .breaker import CircuitBreaker
    from .faults import CrashPlan, RetryPolicy

_T = TypeVar("_T")

__all__ = [
    "StoreError",
    "StoreUnavailable",
    "SimulatedCrash",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
]


class StoreError(RuntimeError):
    """Raised for unknown pages, size mismatches, or closed stores."""


class StoreUnavailable(StoreError):
    """The store's circuit breaker is open: the operation was refused
    *before* touching the device (see :mod:`repro.storage.breaker`).

    Serving layers treat this as a degradable condition — skip the page,
    flag the response partial — rather than a corrupt result.
    """


class SimulatedCrash(StoreError):
    """A fault-injection plan 'killed the process' at this write.

    Raised by the physical-write hook (see
    :class:`~repro.storage.faults.CrashPlan`); the store marks itself
    crashed so a subsequent :meth:`PageStore.close` drops the file handles
    without flushing — exactly what a real crash leaves behind.
    """


#: Never batch-extend a file by more than this many bytes at once.
_MAX_EXTEND_BYTES = 16 << 20


class PageStore(abc.ABC):
    """Abstract fixed-page-size storage device.

    Page ids are dense non-negative integers handed out by
    :meth:`allocate`.  Reads and writes always move whole pages.

    ``retry`` (a :class:`~repro.storage.faults.RetryPolicy`) makes
    :meth:`read_page` / :meth:`write_page` retry transient faults with
    bounded backoff.  Retries never touch the I/O counters — the paper's
    access counts stay bit-identical — and surface through the per-fault
    ``storage.retries{fault=...}`` counters plus the :attr:`retry_count`
    attribute.

    ``breaker`` (a :class:`~repro.storage.breaker.CircuitBreaker`) watches
    every attempted read/write: once it trips, operations raise
    :class:`StoreUnavailable` *before* any I/O (and before any counter
    moves), so a sick device fails fast instead of hanging callers in
    retry loops.  With no breaker attached behaviour is unchanged.
    """

    def __init__(self, page_size: int, stats: IOStats | None = None, *,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        if page_size < 32:
            raise StoreError(f"page_size {page_size} is implausibly small")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.retry = retry
        self.breaker = breaker
        self.retry_count = 0

    @abc.abstractmethod
    def allocate(self) -> int:
        """Reserve a new page id (contents undefined until written)."""

    @abc.abstractmethod
    def _read(self, page_id: int) -> bytes:
        ...

    @abc.abstractmethod
    def _write(self, page_id: int, data: bytes) -> None:
        ...

    @property
    @abc.abstractmethod
    def page_count(self) -> int:
        """Number of allocated pages."""

    @property
    def payload_size(self) -> int:
        """Bytes per page available to callers (page size minus any
        integrity trailer)."""
        return self.page_size

    def read_page(self, page_id: int, stats: IOStats | None = None) -> bytes:
        """Fetch one page, counting a disk read.

        ``stats`` overrides the store's default counter for this call —
        query executors pass their own so per-experiment accounting stays
        separate from build-time I/O.
        """
        self._check_id(page_id)
        self._check_breaker(page_id, "read")
        (stats if stats is not None else self.stats).disk_reads += 1
        return self._attempt(
            lambda: self._read(page_id)
            if self.retry is None
            else self.retry.run(lambda: self._read(page_id),
                                on_retry=self._note_retry)
        )

    def peek_page(self, page_id: int) -> bytes:
        """Fetch one page *without* counting (validation, stats, plots)."""
        self._check_id(page_id)
        return self._read(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Store one page, counting a disk write."""
        self._check_id(page_id)
        if len(data) != self.page_size:
            raise StoreError(
                f"page {page_id}: got {len(data)} bytes, "
                f"page size is {self.page_size}"
            )
        self._check_breaker(page_id, "write")
        self.stats.disk_writes += 1
        self._attempt(
            lambda: self._write(page_id, data)
            if self.retry is None
            else self.retry.run(lambda: self._write(page_id, data),
                                on_retry=self._note_retry)
        )

    def _check_breaker(self, page_id: int, op: str) -> None:
        if self.breaker is not None and not self.breaker.allow():
            raise StoreUnavailable(
                f"page {page_id}: {op} refused, circuit breaker is open"
            )

    def _attempt(self, op: Callable[[], _T]) -> _T:
        """Run one (possibly retried) operation, feeding the breaker."""
        if self.breaker is None:
            return op()
        try:
            result = op()
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def _note_retry(self, exc: BaseException) -> None:
        self.retry_count += 1
        obs.inc("storage.retries", fault=type(exc).__name__)

    # -- raw access (fault injection, fsck) ----------------------------------

    def raw_read(self, page_id: int) -> bytes:
        """The stored physical image — uncounted, unverified (a page that
        was never written reads as zeros).  Overridden by concrete stores."""
        raise StoreError(
            f"{type(self).__name__} does not support raw page access"
        )

    def raw_write(self, page_id: int, data: bytes) -> None:
        """Overwrite the stored physical image, bypassing checksums and the
        journal — the corruption back-door fault injection and tests use."""
        raise StoreError(
            f"{type(self).__name__} does not support raw page access"
        )

    def _check_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.page_count:
            raise StoreError(
                f"page {page_id} out of range [0, {self.page_count})"
            )

    def page_ids(self) -> Iterator[int]:
        """Iterate all allocated page ids in order."""
        return iter(range(self.page_count))

    def close(self) -> None:  # pragma: no cover - overridden where needed
        """Release any underlying resources."""

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MemoryPageStore(PageStore):
    """In-memory page store (the default experiment backend)."""

    def __init__(self, page_size: int, stats: IOStats | None = None, *,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        super().__init__(page_size, stats, retry=retry, breaker=breaker)
        self._pages: list[bytes | None] = []

    def allocate(self) -> int:
        self._pages.append(None)
        return len(self._pages) - 1

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def _read(self, page_id: int) -> bytes:
        data = self._pages[page_id]
        if data is None:
            raise StoreError(f"page {page_id} allocated but never written")
        return data

    def _write(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = bytes(data)

    def raw_read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        data = self._pages[page_id]
        return data if data is not None else b"\x00" * self.page_size

    def raw_write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._pages[page_id] = bytes(data)


class FilePageStore(PageStore):
    """Page store backed by a regular file with explicit per-page I/O.

    The file is opened in binary read/write mode and extended in batched
    ``truncate`` calls as pages are allocated.  ``fsync`` on close
    guarantees the bytes are durable, which is as close to the paper's
    raw-partition setup as a portable library can get.

    Parameters
    ----------
    checksums:
        Stamp and verify a CRC32C trailer on every page (reduces
        :attr:`payload_size` by the trailer size).
    journal:
        Double-write journal every page update; replay/discard on open.
    sync:
        ``fsync`` the journal before each in-place write and the data file
        at superblock commits (full durability; slower).
    retry:
        Optional :class:`~repro.storage.faults.RetryPolicy` for transient
        faults.
    crash_plan:
        Optional :class:`~repro.storage.faults.CrashPlan` applied to every
        physical file write (testing only).
    """

    def __init__(self, path: str | os.PathLike, page_size: int,
                 stats: IOStats | None = None, *,
                 checksums: bool = False, journal: bool = False,
                 sync: bool = False, retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 crash_plan: CrashPlan | None = None) -> None:
        super().__init__(page_size, stats, retry=retry, breaker=breaker)
        self._path = os.fspath(path)
        self.checksums = checksums
        self._journal_requested = journal
        self._durable = checksums or journal
        self._reserved = SUPERBLOCK_SLOTS if self._durable else 0
        self._sync = sync
        self._crash_plan = crash_plan
        self._crashed = False
        self._closed = False
        self._tree_meta: dict | None = None
        self._seq = 0
        self.checksum_failures = 0
        self.recoveries = 0
        self.recovered_pages = 0

        exists = os.path.exists(self._path)
        self._file = open(self._path, "r+b" if exists else "w+b")
        try:
            if exists:
                self._open_layout(os.fstat(self._file.fileno()).st_size)
            else:
                self._count = 0
                self._phys_size = 0
                if self._durable:
                    # Both shadow slots are valid from birth, so a plain
                    # open always sees the superblock magic at offset 0.
                    self._commit_superblock()
                    self._commit_superblock()
            self._journal = None
            if journal:
                self._journal = WriteJournal(
                    journal_path(self._path), page_size, sync=sync,
                    write_fn=self._physical_write,
                )
                if exists:
                    self._recover()
        except BaseException:
            if getattr(self, "_journal", None) is not None:
                self._journal.abandon()
            self._file.close()
            raise

    # -- open / recovery ------------------------------------------------------

    def _open_layout(self, size: int) -> None:
        """Validate an existing file and learn its page count."""
        self._phys_size = size
        if not self._durable:
            self._file.seek(0)
            if looks_like_superblock(self._file.read(4)):
                raise StoreError(
                    f"{self._path}: file has a superblock — it is a durable "
                    f"store; open it with matching checksums/journal flags "
                    f"or FilePageStore.open_existing()"
                )
            if size % self.page_size:
                raise StoreError(
                    f"{self._path}: size {size} is not a multiple of "
                    f"page size {self.page_size}"
                )
            self._count = size // self.page_size
            return
        sb = self._read_superblock()
        if sb.page_size != self.page_size:
            raise StoreError(
                f"{self._path}: superblock page size {sb.page_size} != "
                f"requested {self.page_size}"
            )
        if sb.flags != self._flags():
            raise StoreError(
                f"{self._path}: durability flags on disk "
                f"({self._flag_names(sb.flags)}) do not match the open "
                f"request ({self._flag_names(self._flags())})"
            )
        self._seq = sb.seq
        self._count = sb.page_count
        self._tree_meta = sb.tree

    def _read_superblock(self) -> Superblock:
        """Decode the newest valid shadow slot (or raise precisely)."""
        slots: list[Superblock] = []
        errors: list[str] = []
        for slot in range(SUPERBLOCK_SLOTS):
            self._file.seek(slot * self.page_size)
            data = self._file.read(self.page_size)
            try:
                slots.append(Superblock.decode(data, source=self._path))
            except SuperblockError as exc:
                errors.append(f"slot {slot}: {exc}")
        if not slots:
            raise SuperblockError(
                f"{self._path}: no valid superblock slot "
                f"({'; '.join(errors)})"
            )
        return max(slots, key=lambda sb: sb.seq)

    def _recover(self) -> None:
        """Replay intact journal records, discard the torn tail."""
        assert self._journal is not None
        if self._journal.record_bytes == 0:
            return
        replayed = 0
        for page_id, image in self._journal.scan():
            offset = (self._reserved + page_id) * self.page_size
            self._file.seek(offset)
            self._file.write(image)
            self._phys_size = max(self._phys_size,
                                  offset + self.page_size)
            replayed += 1
        self._file.flush()
        os.fsync(self._file.fileno())
        self._journal.checkpoint()
        self.recoveries += 1
        self.recovered_pages += replayed
        obs.inc("storage.recoveries")
        obs.inc("storage.recovered_pages", replayed)

    @classmethod
    def open_existing(cls, path: str | os.PathLike,
                      stats: IOStats | None = None, *,
                      sync: bool = False, retry: RetryPolicy | None = None,
                      breaker: CircuitBreaker | None = None
                      ) -> "FilePageStore":
        """Open a durable store using only its superblock (self-describing:
        page size and durability flags come from the file itself)."""
        path = os.fspath(path)
        sb = _find_superblock(path)
        return cls(
            path, sb.page_size, stats,
            checksums=bool(sb.flags & FLAG_CHECKSUMS),
            journal=bool(sb.flags & FLAG_JOURNAL),
            sync=sync, retry=retry, breaker=breaker,
        )

    # -- properties -----------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_count(self) -> int:
        return self._count

    @property
    def payload_size(self) -> int:
        if self.checksums:
            return self.page_size - TRAILER_SIZE
        return self.page_size

    @property
    def journal_enabled(self) -> bool:
        return self._journal is not None

    @property
    def supports_tree_meta(self) -> bool:
        """Durable stores persist tree metadata in their superblock."""
        return self._durable

    @property
    def tree_meta(self) -> dict | None:
        """Committed tree metadata (height, root_page, ndim, capacity,
        size), or ``None`` when no build has committed."""
        return dict(self._tree_meta) if self._tree_meta is not None else None

    def set_tree_meta(self, meta: dict) -> None:
        """Commit tree metadata: data is fsynced, the superblock is
        shadow-written, and the journal is checkpointed — the build's
        atomic commit point."""
        self._ensure_open()
        if not self._durable:
            raise StoreError(
                f"{self._path}: tree metadata needs a superblock — open "
                f"with checksums=True or journal=True"
            )
        required = {"height", "root_page", "ndim", "capacity", "size"}
        missing = required - set(meta)
        if missing:
            raise StoreError(f"tree meta missing keys: {sorted(missing)}")
        self._tree_meta = {k: int(meta[k]) for k in required}
        self.flush()

    # -- physical I/O ---------------------------------------------------------

    def _flags(self) -> int:
        return ((FLAG_CHECKSUMS if self.checksums else 0)
                | (FLAG_JOURNAL if self._journal_requested else 0))

    @staticmethod
    def _flag_names(flags: int) -> str:
        names = [name for bit, name in ((FLAG_CHECKSUMS, "checksums"),
                                        (FLAG_JOURNAL, "journal"))
                 if flags & bit]
        return "+".join(names) if names else "none"

    def _physical_write(self, fileobj: BinaryIO, data: bytes) -> None:
        """Every byte string headed to the OS funnels through here so a
        :class:`~repro.storage.faults.CrashPlan` can tear or abort it."""
        if self._crash_plan is None:
            fileobj.write(data)
            return
        chunk, crash = self._crash_plan.next_write(data)
        if chunk:
            fileobj.write(chunk)
        if crash:
            fileobj.flush()
            self._crashed = True
            raise SimulatedCrash(
                f"{self._path}: simulated crash at physical write "
                f"{self._crash_plan.at_write}"
                + (f" (torn after {len(chunk)} of {len(data)} bytes)"
                   if chunk else "")
            )

    def _data_offset(self, page_id: int) -> int:
        return (self._reserved + page_id) * self.page_size

    def allocate(self) -> int:
        self._ensure_open()
        page_id = self._count
        self._count += 1
        needed = self._data_offset(page_id) + self.page_size
        if needed > self._phys_size:
            # Batched zero-fill extension: doubling (capped) keeps the
            # number of syscalls logarithmic in the final file size, not
            # one seek+write pair per page.  flush()/close() truncate the
            # over-allocation back to the committed size.
            target = max(needed,
                         min(2 * self._phys_size,
                             needed + _MAX_EXTEND_BYTES))
            self._file.truncate(target)
            self._phys_size = target
        return page_id

    def _read(self, page_id: int) -> bytes:
        self._ensure_open()
        self._file.seek(self._data_offset(page_id))
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            if not self._durable:
                raise StoreError(f"short read on page {page_id}")
            # Durable page counts come from the superblock; an allocated
            # page past EOF simply reads back as never-written zeros and
            # fails checksum verification with a precise error below.
            data = data + b"\x00" * (self.page_size - len(data))
        if self.checksums:
            try:
                data = verify_trailer(data, page_id, source=self._path)
            except ChecksumError:
                self.checksum_failures += 1
                obs.inc("storage.checksum_failures")
                raise
        return data

    def _write(self, page_id: int, data: bytes) -> None:
        self._ensure_open()
        image = data
        if self.checksums:
            if any(data[len(data) - TRAILER_SIZE:]):
                raise StoreError(
                    f"page {page_id}: payload extends into the "
                    f"{TRAILER_SIZE}-byte checksum trailer (payload budget "
                    f"is {self.payload_size} of {self.page_size} bytes)"
                )
            image = stamp_trailer(data, page_id)
        if self._journal is not None:
            self._journal.append(page_id, image)
        self._file.seek(self._data_offset(page_id))
        self._physical_write(self._file, image)

    def raw_read(self, page_id: int) -> bytes:
        self._check_id(page_id)
        self._ensure_open()
        self._file.seek(self._data_offset(page_id))
        data = self._file.read(self.page_size)
        return data + b"\x00" * (self.page_size - len(data))

    def raw_write(self, page_id: int, data: bytes) -> None:
        self._check_id(page_id)
        self._ensure_open()
        if len(data) != self.page_size:
            raise StoreError(
                f"raw write of {len(data)} bytes to page {page_id}; "
                f"page size is {self.page_size}"
            )
        self._file.seek(self._data_offset(page_id))
        self._file.write(data)
        self._file.flush()
        self._phys_size = max(self._phys_size,
                              self._data_offset(page_id) + self.page_size)

    # -- commit / teardown ----------------------------------------------------

    def _commit_superblock(self) -> None:
        if not self._durable:
            return
        self._seq += 1
        sb = Superblock(page_size=self.page_size, flags=self._flags(),
                        seq=self._seq, page_count=self._count,
                        tree=self._tree_meta)
        offset = sb.slot * self.page_size
        self._file.seek(offset)
        self._physical_write(self._file, sb.encode())
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self._phys_size = max(self._phys_size, offset + self.page_size)

    def flush(self) -> None:
        """Make every committed page durable: trim the batch extension,
        fsync the data, shadow-write the superblock, drop the journal."""
        self._ensure_open()
        exact = self._data_offset(self._count)
        if self._phys_size != exact:
            self._file.truncate(exact)
            self._phys_size = exact
        self._file.flush()
        os.fsync(self._file.fileno())
        self._commit_superblock()
        if self._journal is not None:
            self._journal.checkpoint()

    def close(self, *, flush: bool = True) -> None:
        """Close the store; ``flush=False`` skips the final superblock
        commit so read-only passes (``fsck`` on a clean file) leave the
        bytes on disk exactly as they found them."""
        if self._closed:
            return
        if self._crashed:
            # A simulated crash leaves the file exactly as the torn write
            # left it: close handles without flushing anything.
            self._closed = True
            if self._journal is not None:
                self._journal.abandon()
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass
            return
        try:
            if flush:
                self.flush()
        finally:
            self._closed = True
            if self._journal is not None:
                if self._crashed:
                    self._journal.abandon()
                else:
                    self._journal.close()
            self._file.close()

    def _ensure_open(self) -> None:
        if self._crashed:
            raise StoreError(f"{self._path} hit a simulated crash")
        if self._closed:
            raise StoreError(f"{self._path} is closed")


def _find_superblock(path: str) -> Superblock:
    """Locate and decode the newest valid superblock slot of ``path``
    without knowing the page size in advance."""
    with open(path, "rb") as f:
        head = f.read(64)
        if not looks_like_superblock(head):
            raise StoreError(
                f"{path}: no superblock — not a durable page store (open "
                f"with FilePageStore(path, page_size) instead)"
            )
        size = os.fstat(f.fileno()).st_size
        candidates: list[Superblock] = []
        first_error: Exception | None = None
        try:
            f.seek(0)
            sb0 = Superblock.decode(f.read(4096), source=path)
            candidates.append(sb0)
        except SuperblockError as exc:
            first_error = exc
            sb0 = None
        # The sibling slot lives at offset page_size; trust slot 0's own
        # claim when it decoded, otherwise probe the standard alignments.
        probe_sizes = ([sb0.page_size] if sb0 is not None
                       else [512, 1024, 2048, 4096, 8192, 16384, 32768])
        for page_size in probe_sizes:
            if page_size >= size:
                continue
            f.seek(page_size)
            try:
                candidates.append(
                    Superblock.decode(f.read(4096), source=path)
                )
            except SuperblockError:
                continue
    if not candidates:
        raise SuperblockError(
            f"{path}: superblock slots are all corrupt ({first_error})"
        )
    return max(candidates, key=lambda sb: sb.seq)
