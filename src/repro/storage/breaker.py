"""Per-store circuit breaker: fail fast once a store is demonstrably sick.

A :class:`CircuitBreaker` watches the success/failure stream of a
:class:`~repro.storage.store.PageStore`'s reads and writes (the store calls
:meth:`record_success` / :meth:`record_failure` around every operation when
one is attached).  The state machine is the classic three-state design:

* **closed** — normal operation; ``failure_threshold`` *consecutive*
  failures trip the breaker.
* **open** — :meth:`allow` answers ``False``, so the store raises
  :class:`~repro.storage.store.StoreUnavailable` *before* touching the disk
  or burning retry budget.  The serving layer treats that fast failure as
  an unreachable subtree and answers degraded (``partial=true``) instead of
  hanging on a sick device.
* **half-open** — after ``reset_timeout_s`` the breaker lets probe
  operations through; ``half_open_successes`` consecutive probe successes
  close it, any probe failure re-opens it (and restarts the timer).

The clock is injectable so tests drive the timeout deterministically, and
all transitions are lock-protected — the serving layer records from
executor threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..obs import runtime as obs

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injectable clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 1.0,
                 half_open_successes: int = 2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_successes = half_open_successes
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.trips = 0
        self.fast_fails = 0
        self.failures_total = 0
        self.successes_total = 0

    # -- queries ------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` -> ``half_open`` on timeout."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May an operation be attempted right now?

        ``False`` only while open (inside the reset timeout); the caller is
        expected to fail fast without touching the device.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is not self.OPEN:
                return True
            self.fast_fails += 1
            return False

    # -- event stream -------------------------------------------------------

    def record_success(self) -> None:
        """An attempted operation completed."""
        with self._lock:
            self._maybe_half_open()
            self.successes_total += 1
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._state = self.CLOSED
                    obs.inc("storage.breaker.closes")

    def record_failure(self) -> None:
        """An attempted operation raised."""
        with self._lock:
            self._maybe_half_open()
            self.failures_total += 1
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._trip()
            elif (self._state == self.CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    # -- internals ----------------------------------------------------------

    def _maybe_half_open(self) -> None:
        if (self._state == self.OPEN
                and self.clock() - self._opened_at >= self.reset_timeout_s):
            self._state = self.HALF_OPEN
            self._probe_successes = 0

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self.clock()
        self._probe_successes = 0
        self.trips += 1
        obs.inc("storage.breaker.trips")

    def snapshot(self) -> dict:
        """JSON-able state for health endpoints and run manifests."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "fast_fails": self.fast_fails,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
            }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
                f"threshold={self.failure_threshold})")
