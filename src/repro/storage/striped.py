"""Striped page store: the paper's "parallel shared-nothing" future work.

The conclusion of the paper plans to "extend our results to a parallel
shared-nothing platform".  The standard way to put an R-tree on such a
platform (Kamel & Faloutsos's multi-disk R-trees) is to *decluster* pages
across D disks so one query's pages can be fetched in parallel.

:class:`StripedPageStore` composes D backing stores (disks) with
round-robin page placement and per-disk I/O counters.  Its headline metric
for the parallel experiments is :meth:`parallel_cost`: with perfect
overlap, a batch of page fetches costs as much as its most-loaded disk, so
``parallel speedup = total accesses / max-per-disk accesses``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .counters import IOStats
from .store import PageStore, StoreError

if TYPE_CHECKING:
    from .breaker import CircuitBreaker
    from .faults import RetryPolicy

__all__ = ["StripedPageStore"]


class StripedPageStore(PageStore):
    """Round-robin declustering of pages over multiple backing stores.

    Page ``p`` lives on disk ``p % D`` at local offset ``p // D``.  The
    global stats count every access; each backing store's own stats see
    only its share, giving the per-disk load profile the parallel speedup
    metric needs.
    """

    def __init__(self, disks: Sequence[PageStore],
                 stats: IOStats | None = None, *,
                 retry: "RetryPolicy | None" = None,
                 breaker: "CircuitBreaker | None" = None) -> None:
        if not disks:
            raise StoreError("need at least one backing store")
        sizes = {d.page_size for d in disks}
        if len(sizes) != 1:
            raise StoreError(f"page-size mismatch across disks: {sizes}")
        super().__init__(disks[0].page_size, stats, retry=retry,
                         breaker=breaker)
        self._disks = list(disks)
        counts = {d.page_count for d in self._disks}
        if counts not in ({0}, set()):
            # Re-opening existing striped storage: disks may differ by at
            # most one page (the round-robin remainder).
            if max(counts) - min(counts) > 1:
                raise StoreError(
                    "backing stores are not a consistent round-robin stripe"
                )
        self._count = sum(d.page_count for d in self._disks)

    @property
    def disk_count(self) -> int:
        return len(self._disks)

    @property
    def disks(self) -> tuple[PageStore, ...]:
        """The backing stores, in stripe order (read-only view)."""
        return tuple(self._disks)

    def disk_paths(self) -> list[str] | None:
        """Backing file paths in stripe order, or ``None`` when any disk
        is not file-backed (memory stores cannot be re-opened by a
        serving worker process)."""
        paths = [getattr(d, "path", None) for d in self._disks]
        if any(p is None for p in paths):
            return None
        return [str(p) for p in paths]

    @property
    def page_count(self) -> int:
        return self._count

    def _locate(self, page_id: int) -> tuple[PageStore, int]:
        return (self._disks[page_id % len(self._disks)],
                page_id // len(self._disks))

    def allocate(self) -> int:
        page_id = self._count
        disk, local = self._locate(page_id)
        got = disk.allocate()
        if got != local:
            raise StoreError(
                f"stripe inconsistency: disk allocated {got}, "
                f"expected local page {local}"
            )
        self._count += 1
        return page_id

    def _read(self, page_id: int) -> bytes:
        disk, local = self._locate(page_id)
        # The disk's own read_page counts its per-disk share.
        return disk.read_page(local)

    def _write(self, page_id: int, data: bytes) -> None:
        disk, local = self._locate(page_id)
        disk.write_page(local, data)

    # -- parallel-cost accounting --------------------------------------------

    def per_disk_reads(self) -> list[int]:
        """Reads observed by each backing store since its stats were reset."""
        return [d.stats.disk_reads for d in self._disks]

    def reset_disk_stats(self) -> None:
        """Zero every backing store's counters (start of a batch)."""
        for d in self._disks:
            d.stats.reset()

    def parallel_cost(self) -> int:
        """Batch cost under perfect overlap: the most-loaded disk's reads."""
        return max(self.per_disk_reads())

    def parallel_speedup(self) -> float:
        """Total reads / most-loaded-disk reads (ideal = disk count)."""
        cost = self.parallel_cost()
        if cost == 0:
            return 1.0
        return sum(self.per_disk_reads()) / cost

    def close(self) -> None:
        for d in self._disks:
            d.close()
