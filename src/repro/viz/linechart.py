"""SVG line charts for the paper's figure series.

The experiment runners for Figures 7-12 return
:class:`~repro.experiments.report.Series` lists; this renders them as
standalone SVG line charts (axes, ticks, legend, one polyline per series)
so ``python -m repro fig7 --svg`` produces something that looks like the
paper's plot rather than a table.  Pure text generation, no plotting
dependency.
"""

from __future__ import annotations

import io
import math
from typing import Sequence

from ..experiments.report import Series

__all__ = ["line_chart_svg"]

_W, _H = 760, 520
_ML, _MR, _MT, _MB = 70, 180, 50, 60  # margins (legend lives right)
_COLORS = ("#1f4e8c", "#c0392b", "#1e8449", "#7d3c98",
           "#b7950b", "#148f9b", "#873600", "#4a235a")
_DASHES = ("", "6,4", "2,3", "8,3,2,3")


def _nice_ticks(lo: float, hi: float, target: int = 6) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / target
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if raw <= step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step / 2:
        if t >= lo - step / 2:
            ticks.append(round(t, 10))
        t += step
    return ticks


def line_chart_svg(series: Sequence[Series], *, title: str = "",
                   x_label: str = "x", y_label: str = "y") -> str:
    """Render series as an SVG line chart with a legend."""
    populated = [s for s in series if s.xs]
    if not populated:
        raise ValueError("no data to plot")
    x_min = min(min(s.xs) for s in populated)
    x_max = max(max(s.xs) for s in populated)
    y_min = min(0.0, min(min(s.ys) for s in populated))
    y_max = max(max(s.ys) for s in populated)
    x_ticks = _nice_ticks(x_min, x_max)
    y_ticks = _nice_ticks(y_min, y_max)
    x_lo, x_hi = min(x_ticks[0], x_min), max(x_ticks[-1], x_max)
    y_lo, y_hi = min(y_ticks[0], y_min), max(y_ticks[-1], y_max)

    plot_w = _W - _ML - _MR
    plot_h = _H - _MT - _MB

    def px(x: float) -> float:
        return _ML + (x - x_lo) / (x_hi - x_lo or 1.0) * plot_w

    def py(y: float) -> float:
        return _MT + (1.0 - (y - y_lo) / (y_hi - y_lo or 1.0)) * plot_h

    out = io.StringIO()
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}" '
        f'font-family="sans-serif">\n'
    )
    out.write(f'  <title>{title}</title>\n')
    out.write(f'  <rect width="{_W}" height="{_H}" fill="white"/>\n')
    out.write(
        f'  <text x="{_W / 2}" y="26" text-anchor="middle" '
        f'font-size="16">{title}</text>\n'
    )

    # Axes + grid + ticks.
    out.write(
        f'  <rect x="{_ML}" y="{_MT}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333"/>\n'
    )
    for t in x_ticks:
        x = px(t)
        out.write(
            f'  <line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" '
            f'y2="{_MT + plot_h}" stroke="#ddd"/>\n'
        )
        out.write(
            f'  <text x="{x:.1f}" y="{_MT + plot_h + 18}" '
            f'text-anchor="middle" font-size="11">{t:g}</text>\n'
        )
    for t in y_ticks:
        y = py(t)
        out.write(
            f'  <line x1="{_ML}" y1="{y:.1f}" x2="{_ML + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>\n'
        )
        out.write(
            f'  <text x="{_ML - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11">{t:g}</text>\n'
        )
    out.write(
        f'  <text x="{_ML + plot_w / 2}" y="{_H - 14}" '
        f'text-anchor="middle" font-size="12">{x_label}</text>\n'
    )
    out.write(
        f'  <text x="20" y="{_MT + plot_h / 2}" font-size="12" '
        f'text-anchor="middle" '
        f'transform="rotate(-90 20 {_MT + plot_h / 2})">{y_label}</text>\n'
    )

    # Series polylines + markers + legend.
    for i, s in enumerate(populated):
        color = _COLORS[i % len(_COLORS)]
        dash = _DASHES[i % len(_DASHES)]
        pts = " ".join(f"{px(x):.1f},{py(y):.1f}"
                       for x, y in zip(s.xs, s.ys))
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        out.write(
            f'  <polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"{dash_attr}/>\n'
        )
        for x, y in zip(s.xs, s.ys):
            out.write(
                f'  <circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.6" '
                f'fill="{color}"/>\n'
            )
        ly = _MT + 16 + i * 20
        lx = _ML + plot_w + 14
        out.write(
            f'  <line x1="{lx}" y1="{ly - 4}" x2="{lx + 26}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="1.8"'
            f'{dash_attr}/>\n'
        )
        out.write(
            f'  <text x="{lx + 32}" y="{ly}" font-size="11">'
            f'{s.label}</text>\n'
        )

    out.write("</svg>\n")
    return out.getvalue()
