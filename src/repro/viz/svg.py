"""Dependency-free SVG rendering of datasets and tree leaves.

The paper's Figures 2-6 are plots: leaf-level MBRs of the Long Beach tree
under each packing algorithm, and scatter views of the CFD mesh.  A full
plotting stack is out of scope for an offline library, but SVG is just
text; these helpers emit standalone files good enough to eyeball the
qualitative claims (NX's vertical strips, HS's fractal clusters, STR's
tiling, the CFD smudge).
"""

from __future__ import annotations

import io

import numpy as np

from ..core.geometry import RectArray

__all__ = ["rects_svg", "scatter_svg", "leaf_mbr_svg"]

_CANVAS = 720
_MARGIN = 40


def _open_svg(out: io.StringIO, title: str) -> None:
    size = _CANVAS + 2 * _MARGIN
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">\n'
    )
    out.write(f"  <title>{title}</title>\n")
    out.write(
        f'  <rect x="0" y="0" width="{size}" height="{size}" fill="white"/>\n'
    )
    out.write(
        f'  <rect x="{_MARGIN}" y="{_MARGIN}" width="{_CANVAS}" '
        f'height="{_CANVAS}" fill="none" stroke="#888"/>\n'
    )
    out.write(
        f'  <text x="{_MARGIN}" y="{_MARGIN - 10}" font-size="16" '
        f'font-family="sans-serif">{title}</text>\n'
    )


def _project(xy: np.ndarray, bounds: tuple[float, float, float, float]
             ) -> np.ndarray:
    """Data coordinates -> SVG pixels (y flipped)."""
    x0, y0, x1, y1 = bounds
    span = np.array([max(x1 - x0, 1e-12), max(y1 - y0, 1e-12)])
    scaled = (xy - np.array([x0, y0])) / span
    px = _MARGIN + scaled[:, 0] * _CANVAS
    py = _MARGIN + (1.0 - scaled[:, 1]) * _CANVAS
    return np.column_stack([px, py])


def _bounds_of(los: np.ndarray, his: np.ndarray,
               bounds: tuple[float, float, float, float] | None
               ) -> tuple[float, float, float, float]:
    if bounds is not None:
        return bounds
    lo = los.min(axis=0)
    hi = his.max(axis=0)
    return (float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))


def rects_svg(rects: RectArray, *, title: str = "rectangles",
              bounds: tuple[float, float, float, float] | None = None,
              stroke: str = "#1f4e8c") -> str:
    """Outline drawing of 2-D rectangles (the paper's Figures 2-4 style)."""
    if rects.ndim != 2:
        raise ValueError("SVG rendering is 2-D only")
    box = _bounds_of(rects.los, rects.his, bounds)
    lo_px = _project(rects.los, box)
    hi_px = _project(rects.his, box)
    out = io.StringIO()
    _open_svg(out, title)
    for (x0, y0), (x1, y1) in zip(lo_px, hi_px):
        # Projection flips y, so y1 < y0 in pixel space.
        w = max(x1 - x0, 0.5)
        h = max(y0 - y1, 0.5)
        out.write(
            f'  <rect x="{x0:.1f}" y="{y1:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="none" stroke="{stroke}" '
            f'stroke-width="0.6"/>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()


def scatter_svg(points: np.ndarray, *, title: str = "points",
                bounds: tuple[float, float, float, float] | None = None,
                radius: float = 1.0, fill: str = "#222") -> str:
    """Scatter plot of 2-D points (the paper's Figures 5-6 style)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    box = _bounds_of(pts, pts, bounds)
    px = _project(pts, box)
    out = io.StringIO()
    _open_svg(out, title)
    for x, y in px:
        out.write(
            f'  <circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" '
            f'fill="{fill}"/>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()


def leaf_mbr_svg(tree, *, title: str = "leaf MBRs") -> str:
    """Leaf-level MBR outlines of a :class:`~repro.rtree.paged.PagedRTree`."""
    leaf_mbrs = [node.rects.mbr() for _, node in tree.iter_level(0)]
    return rects_svg(RectArray.from_rects(leaf_mbrs), title=title)
