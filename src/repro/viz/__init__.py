"""SVG visualisation of datasets and leaf-level MBRs (Figures 2-6)."""

from .linechart import line_chart_svg
from .svg import leaf_mbr_svg, rects_svg, scatter_svg

__all__ = ["rects_svg", "scatter_svg", "leaf_mbr_svg", "line_chart_svg"]
