"""Reproduction of Leutenegger, Edgington & Lopez,
"STR: A Simple and Efficient Algorithm for R-Tree Packing" (ICDE 1997).

Public API overview
-------------------
Geometry
    :class:`~repro.core.geometry.Rect`, :class:`~repro.core.geometry.RectArray`
Packing algorithms (the paper's subject)
    :class:`~repro.core.packing.str_.SortTileRecursive` (STR, the contribution),
    :class:`~repro.core.packing.hilbert.HilbertSort` (HS),
    :class:`~repro.core.packing.nearest_x.NearestX` (NX),
    :func:`~repro.core.packing.registry.make_algorithm`
Trees
    :func:`~repro.rtree.bulk.bulk_load` builds a paged, packed
    :class:`~repro.rtree.paged.PagedRTree`;
    :class:`~repro.rtree.tree.RTree` is the dynamic Guttman baseline.
Storage
    :class:`~repro.storage.buffer.BufferPool` (LRU et al.),
    :class:`~repro.storage.store.MemoryPageStore` /
    :class:`~repro.storage.store.FilePageStore`
Datasets & experiments
    :mod:`repro.datasets` generates the paper's four data families;
    :mod:`repro.experiments` regenerates every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import RectArray, SortTileRecursive, bulk_load, Rect
>>> rng = np.random.default_rng(7)
>>> rects = RectArray.from_points(rng.random((10_000, 2)))
>>> tree, report = bulk_load(rects, SortTileRecursive(), capacity=100)
>>> searcher = tree.searcher(buffer_pages=10)
>>> ids = searcher.search(Rect((0.4, 0.4), (0.6, 0.6)))
>>> searcher.disk_accesses > 0
True
"""

from . import obs
from .core.geometry import Rect, RectArray, unit_square
from .core.packing.base import PackingAlgorithm
from .core.packing.hilbert import HilbertSort
from .core.packing.nearest_x import NearestX
from .core.packing.registry import algorithm_names, make_algorithm
from .core.packing.str_ import SortTileRecursive
from .rtree.bulk import bulk_load, paged_from_dynamic
from .rtree.costmodel import expected_node_accesses
from .rtree.hilbert_rtree import HilbertRTree
from .rtree.knn import knn
from .rtree.paged import PagedRTree, PagedSearcher
from .rtree.rstar import RStarTree
from .rtree.stats import TreeQuality, measure_dynamic, measure_paged
from .rtree.tree import RTree
from .rtree.validate import validate_dynamic, validate_paged
from .storage.buffer import BufferPool
from .storage.counters import IOStats
from .storage.store import FilePageStore, MemoryPageStore
from .storage.striped import StripedPageStore

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Rect",
    "RectArray",
    "unit_square",
    "PackingAlgorithm",
    "SortTileRecursive",
    "HilbertSort",
    "NearestX",
    "make_algorithm",
    "algorithm_names",
    "bulk_load",
    "paged_from_dynamic",
    "PagedRTree",
    "PagedSearcher",
    "RTree",
    "RStarTree",
    "HilbertRTree",
    "knn",
    "expected_node_accesses",
    "StripedPageStore",
    "TreeQuality",
    "measure_paged",
    "measure_dynamic",
    "validate_paged",
    "validate_dynamic",
    "BufferPool",
    "IOStats",
    "MemoryPageStore",
    "FilePageStore",
    "__version__",
]
