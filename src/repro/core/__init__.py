"""Core abstractions: geometry and the packing-algorithm framework."""

from .geometry import Rect, RectArray, unit_square

__all__ = ["Rect", "RectArray", "unit_square"]
