"""Axis-aligned hyper-rectangle geometry.

This module is the geometric substrate of the whole library.  Everything an
R-tree does — grouping input objects, computing minimum bounding rectangles
(MBRs), testing query overlap — reduces to a small algebra over axis-aligned
hyper-rectangles, implemented here twice:

* :class:`Rect` — an immutable, hashable single rectangle with scalar
  operations.  Convenient for construction, tests and tree plumbing.
* :class:`RectArray` — a set of ``n`` rectangles stored as two ``(n, k)``
  numpy arrays.  All bulk operations used on hot paths (packing sorts,
  per-node overlap tests during query execution) are vectorized here.

Conventions
-----------
A rectangle in ``k`` dimensions is the point set
``{p : lo[i] <= p[i] <= hi[i] for all i}``.  Boundaries are *closed*, so two
rectangles sharing only an edge still intersect — this matches Guttman's
original definition and the paper's query semantics ("all rectangles that
intersect the query region must be retrieved").

The paper reports a "perimeter" metric.  For a 2-D rectangle the usual
perimeter is ``2 * (dx + dy)``; the standard k-dimensional generalisation
(the R*-tree "margin") is the sum of extents.  We expose both:
:meth:`Rect.margin` is ``sum(extents)`` and :meth:`Rect.perimeter` is
``2 * margin``, which coincides with the familiar perimeter at ``k = 2``
and is what the paper's Tables 4, 6, 8 and 10 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "GeometryError",
    "Rect",
    "RectArray",
    "unit_square",
    "enclosing_mbr",
]


class GeometryError(ValueError):
    """Raised for malformed rectangles or dimension mismatches."""


def _as_coords(values: Sequence[float], name: str) -> tuple[float, ...]:
    coords = tuple(float(v) for v in values)
    if not coords:
        raise GeometryError(f"{name} must have at least one coordinate")
    for v in coords:
        if not np.isfinite(v):
            raise GeometryError(f"{name} contains non-finite coordinate {v!r}")
    return coords


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable axis-aligned hyper-rectangle.

    Parameters
    ----------
    lo, hi:
        Coordinate tuples of equal length ``k`` with ``lo[i] <= hi[i]``.
        Degenerate rectangles (``lo[i] == hi[i]``) are allowed and are how
        point data is represented throughout the library.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        lo = _as_coords(self.lo, "lo")
        hi = _as_coords(self.hi, "hi")
        if len(lo) != len(hi):
            raise GeometryError(
                f"lo has {len(lo)} dimensions but hi has {len(hi)}"
            )
        for a, b in zip(lo, hi):
            if a > b:
                raise GeometryError(f"lo {lo} exceeds hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """A degenerate rectangle covering a single point."""
        coords = _as_coords(point, "point")
        return cls(coords, coords)

    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Rect":
        """Build from a center point and full side lengths."""
        c = _as_coords(center, "center")
        e = _as_coords(extents, "extents")
        if len(c) != len(e):
            raise GeometryError("center and extents dimension mismatch")
        for v in e:
            if v < 0:
                raise GeometryError(f"negative extent {v}")
        lo = tuple(ci - ei / 2.0 for ci, ei in zip(c, e))
        hi = tuple(ci + ei / 2.0 for ci, ei in zip(c, e))
        return cls(lo, hi)

    @classmethod
    def from_corners(cls, a: Sequence[float], b: Sequence[float]) -> "Rect":
        """Build from two arbitrary opposite corners (order-insensitive)."""
        pa = _as_coords(a, "corner a")
        pb = _as_coords(b, "corner b")
        if len(pa) != len(pb):
            raise GeometryError("corner dimension mismatch")
        lo = tuple(min(x, y) for x, y in zip(pa, pb))
        hi = tuple(max(x, y) for x, y in zip(pa, pb))
        return cls(lo, hi)

    # -- basic properties -------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions ``k``."""
        return len(self.lo)

    @property
    def extents(self) -> tuple[float, ...]:
        """Side length along each dimension."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric center point."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def area(self) -> float:
        """Volume in ``k`` dimensions (area for ``k = 2``)."""
        out = 1.0
        for e in self.extents:
            out *= e
        return out

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree margin metric)."""
        return float(sum(self.extents))

    def perimeter(self) -> float:
        """``2 * margin`` — the paper's perimeter metric (exact at k=2)."""
        return 2.0 * self.margin()

    def is_degenerate(self) -> bool:
        """True when any side has zero length (e.g. point data)."""
        return any(e == 0.0 for e in self.extents)

    # -- predicates --------------------------------------------------------

    def _check_dim(self, other: "Rect") -> None:
        if self.ndim != other.ndim:
            raise GeometryError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )

    def intersects(self, other: "Rect") -> bool:
        """Closed-boundary overlap test."""
        self._check_dim(other)
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True if ``point`` lies inside or on the boundary."""
        p = _as_coords(point, "point")
        if len(p) != self.ndim:
            raise GeometryError("point dimension mismatch")
        return all(l <= v <= h for l, v, h in zip(self.lo, p, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        self._check_dim(other)
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # -- combining operations ----------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both (MBR of the pair)."""
        self._check_dim(other)
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap region, or ``None`` when disjoint."""
        self._check_dim(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also enclose ``other``.

        This is Guttman's insertion heuristic quantity: the area of
        ``self.union(other)`` minus the area of ``self``.
        """
        return self.union(other).area() - self.area()

    def clamped(self, bounds: "Rect") -> "Rect":
        """Clip this rectangle to ``bounds`` (must overlap)."""
        clipped = self.intersection(bounds)
        if clipped is None:
            raise GeometryError(f"{self} does not overlap bounds {bounds}")
        return clipped

    # -- conversion ----------------------------------------------------------

    def as_array(self) -> np.ndarray:
        """``(2, k)`` array ``[lo, hi]``."""
        return np.array([self.lo, self.hi], dtype=np.float64)

    def __iter__(self) -> Iterator[tuple[float, ...]]:
        yield self.lo
        yield self.hi


def unit_square(ndim: int = 2) -> Rect:
    """The ``[0, 1]^k`` hyper-cube all paper datasets are normalised to."""
    if ndim < 1:
        raise GeometryError("ndim must be >= 1")
    return Rect((0.0,) * ndim, (1.0,) * ndim)


class RectArray:
    """A fixed set of ``n`` hyper-rectangles with vectorized operations.

    Stored as two ``(n, k)`` float64 arrays ``los`` and ``his``.  This is the
    working representation for packing (whole-dataset sorts) and for node
    entries during query execution (one vectorized overlap test per node
    visit).

    The class is deliberately *not* mutable beyond whole-array construction:
    R-tree nodes that need mutation (dynamic insert) use Python-level entry
    lists and convert on write-out.
    """

    __slots__ = ("los", "his")

    def __init__(self, los: np.ndarray, his: np.ndarray, *, copy: bool = True):
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.ndim != 2 or his.ndim != 2:
            raise GeometryError("los/his must be 2-D (n, k) arrays")
        if los.shape != his.shape:
            raise GeometryError(
                f"shape mismatch: los {los.shape} vs his {his.shape}"
            )
        if not (np.isfinite(los).all() and np.isfinite(his).all()):
            raise GeometryError("non-finite coordinates")
        if (los > his).any():
            bad = int(np.argmax((los > his).any(axis=1)))
            raise GeometryError(f"rectangle {bad} has lo > hi")
        if copy:
            los = los.copy()
            his = his.copy()
        los.setflags(write=False)
        his.setflags(write=False)
        self.los = los
        self.his = his

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "RectArray":
        """Build from an iterable of :class:`Rect` (must be non-empty)."""
        rect_list = list(rects)
        if not rect_list:
            raise GeometryError("cannot build RectArray from zero rects")
        ndim = rect_list[0].ndim
        for r in rect_list:
            if r.ndim != ndim:
                raise GeometryError("mixed dimensions in rect list")
        los = np.array([r.lo for r in rect_list], dtype=np.float64)
        his = np.array([r.hi for r in rect_list], dtype=np.float64)
        return cls(los, his, copy=False)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "RectArray":
        """Degenerate rectangles from an ``(n, k)`` point array."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise GeometryError("points must be a 2-D (n, k) array")
        return cls(pts, pts)

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return self.los.shape[0]

    @property
    def ndim(self) -> int:
        """Number of spatial dimensions ``k``."""
        return self.los.shape[1]

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            return Rect(tuple(self.los[index]), tuple(self.his[index]))
        return RectArray(self.los[index], self.his[index], copy=False)

    def __iter__(self) -> Iterator[Rect]:
        for i in range(len(self)):
            yield self[int(i)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectArray):
            return NotImplemented
        return (
            self.los.shape == other.los.shape
            and bool(np.array_equal(self.los, other.los))
            and bool(np.array_equal(self.his, other.his))
        )

    def __repr__(self) -> str:
        return f"RectArray(n={len(self)}, ndim={self.ndim})"

    # -- vectorized measures -------------------------------------------------

    def centers(self) -> np.ndarray:
        """``(n, k)`` array of center points."""
        return (self.los + self.his) / 2.0

    def extents(self) -> np.ndarray:
        """``(n, k)`` array of side lengths."""
        return self.his - self.los

    def areas(self) -> np.ndarray:
        """``(n,)`` array of areas (k-volumes)."""
        return np.prod(self.extents(), axis=1)

    def margins(self) -> np.ndarray:
        """``(n,)`` array of margins (sum of side lengths)."""
        return np.sum(self.extents(), axis=1)

    def perimeters(self) -> np.ndarray:
        """``(n,)`` array of perimeters (``2 * margin``)."""
        return 2.0 * self.margins()

    def total_area(self) -> float:
        """Sum of all areas — the paper's area metric for a node set."""
        return float(self.areas().sum())

    def total_perimeter(self) -> float:
        """Sum of all perimeters — the paper's perimeter metric."""
        return float(self.perimeters().sum())

    # -- vectorized predicates ---------------------------------------------

    def intersects_rect(self, query: Rect) -> np.ndarray:
        """Boolean mask of rectangles overlapping ``query`` (closed bounds)."""
        if query.ndim != self.ndim:
            raise GeometryError("query dimension mismatch")
        qlo = np.asarray(query.lo)
        qhi = np.asarray(query.hi)
        return np.logical_and(
            (self.los <= qhi).all(axis=1),
            (self.his >= qlo).all(axis=1),
        )

    def contains_point(self, point: Sequence[float]) -> np.ndarray:
        """Boolean mask of rectangles containing ``point``."""
        p = np.asarray(_as_coords(point, "point"))
        if p.shape[0] != self.ndim:
            raise GeometryError("point dimension mismatch")
        return np.logical_and(
            (self.los <= p).all(axis=1), (self.his >= p).all(axis=1)
        )

    def contained_in(self, outer: Rect) -> np.ndarray:
        """Boolean mask of rectangles fully inside ``outer``."""
        if outer.ndim != self.ndim:
            raise GeometryError("dimension mismatch")
        olo = np.asarray(outer.lo)
        ohi = np.asarray(outer.hi)
        return np.logical_and(
            (self.los >= olo).all(axis=1), (self.his <= ohi).all(axis=1)
        )

    # -- aggregation ----------------------------------------------------------

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the whole set."""
        return Rect(tuple(self.los.min(axis=0)), tuple(self.his.max(axis=0)))

    def group_mbrs(self, group_sizes: Sequence[int]) -> "RectArray":
        """MBRs of consecutive runs of the given sizes.

        This is the core packing primitive: after ordering, leaves are formed
        from consecutive runs of ``n`` rectangles and this computes all their
        MBRs in one pass.
        """
        sizes = np.asarray(group_sizes, dtype=np.int64)
        if sizes.ndim != 1 or len(sizes) == 0:
            raise GeometryError("group_sizes must be a non-empty 1-D sequence")
        if (sizes <= 0).any():
            raise GeometryError("group sizes must be positive")
        if int(sizes.sum()) != len(self):
            raise GeometryError(
                f"group sizes sum to {int(sizes.sum())}, expected {len(self)}"
            )
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        los = np.minimum.reduceat(self.los, bounds[:-1], axis=0)
        his = np.maximum.reduceat(self.his, bounds[:-1], axis=0)
        return RectArray(los, his, copy=False)

    def take(self, order: np.ndarray) -> "RectArray":
        """Reorder by an index array (e.g. an argsort permutation)."""
        idx = np.asarray(order)
        return RectArray(self.los[idx], self.his[idx], copy=False)


def enclosing_mbr(rects: Iterable[Rect]) -> Rect:
    """MBR of an iterable of :class:`Rect` (must be non-empty)."""
    it = iter(rects)
    try:
        out = next(it)
    except StopIteration:
        raise GeometryError("cannot compute MBR of zero rectangles") from None
    for r in it:
        out = out.union(r)
    return out
