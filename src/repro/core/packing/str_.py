"""Sort-Tile-Recursive (STR) packing — the paper's contribution.

Two dimensions (the base case)
------------------------------
Let ``P = ceil(r / n)`` be the number of leaf pages and ``S = ceil(sqrt(P))``.
Sort the rectangles by center x-coordinate and cut the sorted list into
``S`` *vertical slices* of ``S * n`` consecutive rectangles (the last slice
may be short).  Sort each slice by center y-coordinate and pack runs of
``n``.  The data space ends up tiled by a roughly ``S x S`` grid of compact
leaves — Figure 4 of the paper.

k dimensions
------------
Sort by the first center coordinate, cut into ``S = ceil(P ** (1/k))``
*slabs* of ``n * ceil(P ** ((k-1)/k))`` consecutive rectangles, and recurse
on each slab with the remaining ``k - 1`` coordinates.  ``k = 1`` is a plain
sort (the paper notes 1-D data is already handled well by B-trees).

The implementation below is a pure permutation producer over numpy arrays:
no copying of rectangle data, one ``argsort`` per slab, recursion depth
``k``.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.geometry import RectArray
from ...obs import runtime as obs
from .base import (
    PackingAlgorithm,
    PackingError,
    ceil_pow_frac,
    validate_permutation,
)

__all__ = ["SortTileRecursive", "str_slab_sizes"]


def str_slab_sizes(count: int, capacity: int, dims_left: int) -> list[int]:
    """Sizes of the consecutive slabs STR cuts at the current dimension.

    ``dims_left`` is the number of coordinates not yet consumed (``k`` at
    the top level).  Returns a list summing to ``count``; every slab is
    ``capacity * ceil(P ** ((dims_left-1)/dims_left))`` rectangles except
    possibly the last.
    """
    if count < 1:
        raise PackingError("count must be >= 1")
    if capacity < 1:
        raise PackingError("capacity must be >= 1")
    if dims_left < 1:
        raise PackingError("dims_left must be >= 1")
    if dims_left == 1:
        return [count]
    pages = math.ceil(count / capacity)
    # The paper's slab width, computed exactly: n * ceil(P^((k-1)/k)).
    # At k=2 this is n * ceil(sqrt(P)) = S*n, the "vertical slice" width.
    slab = capacity * ceil_pow_frac(pages, dims_left - 1, dims_left)
    sizes = []
    remaining = count
    while remaining > 0:
        take = min(slab, remaining)
        sizes.append(take)
        remaining -= take
    return sizes


class SortTileRecursive(PackingAlgorithm):
    """The STR ordering (works for any dimensionality >= 1)."""

    name = "STR"

    def order(self, rects: RectArray, capacity: int) -> np.ndarray:
        self._check(rects, capacity)
        centers = rects.centers()
        all_idx = np.arange(len(rects), dtype=np.int64)
        perm = self._order_slab(centers, all_idx, dim=0, capacity=capacity)
        return validate_permutation(perm, len(rects))

    def _order_slab(self, centers: np.ndarray, idx: np.ndarray, dim: int,
                    capacity: int) -> np.ndarray:
        """Recursively order the subset ``idx`` starting at coordinate ``dim``."""
        ndim = centers.shape[1]
        dims_left = ndim - dim
        keys = centers[idx, dim]
        with obs.span("str.sort", dim=dim, count=len(idx)):
            local = np.argsort(keys, kind="stable")
        ordered = idx[local]
        if dims_left <= 1:
            return ordered
        with obs.span("str.tile", dim=dim, count=len(ordered)):
            sizes = str_slab_sizes(len(ordered), capacity, dims_left)
        if len(sizes) == 1:
            # A single slab: just recurse into the remaining dimensions.
            return self._order_slab(centers, ordered, dim + 1, capacity)
        pieces = []
        offset = 0
        for size in sizes:
            chunk = ordered[offset:offset + size]
            pieces.append(
                self._order_slab(centers, chunk, dim + 1, capacity)
            )
            offset += size
        return np.concatenate(pieces)
