"""Packing-algorithm framework.

Section 2.2 of the paper describes a *General Algorithm* shared by all
three packing methods:

1. Order the ``r`` input rectangles into ``ceil(r/n)`` consecutive groups
   of ``n`` (the node capacity); the last group may be smaller.
2. Load each group into a leaf page and emit ``(MBR, page id)`` pairs.
3. Recursively pack those MBRs into the next level up, until one node —
   the root — remains.

The three algorithms differ **only** in how rectangles are ordered at each
level, so the framework interface is a single method: given a set of
rectangles and the node capacity, return a permutation.  (STR's ordering is
capacity-dependent — its tile widths are derived from the page count — which
is why ``capacity`` is part of the signature.)

The actual page writing lives in :func:`repro.rtree.bulk.bulk_load`;
algorithms stay pure and independently testable.
"""

from __future__ import annotations

import abc

import numpy as np

from ...core.geometry import GeometryError, RectArray

__all__ = ["PackingError", "PackingAlgorithm", "leaf_group_sizes", "ceil_root"]


class PackingError(ValueError):
    """Raised for invalid packing parameters."""


class PackingAlgorithm(abc.ABC):
    """Orders rectangles so consecutive runs of ``capacity`` become nodes."""

    #: Registry key and display name ("STR", "HS", "NX" in the paper).
    name: str = "abstract"

    @abc.abstractmethod
    def order(self, rects: RectArray, capacity: int) -> np.ndarray:
        """Return a permutation of ``range(len(rects))``.

        Packing ``rects.take(perm)`` into consecutive groups of
        ``capacity`` realises this algorithm's leaf (or internal) level.
        """

    def _check(self, rects: RectArray, capacity: int) -> None:
        if len(rects) == 0:
            raise PackingError("cannot pack zero rectangles")
        if capacity < 1:
            raise PackingError(f"capacity must be >= 1, got {capacity}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def leaf_group_sizes(count: int, capacity: int) -> list[int]:
    """Group sizes for step 1 of the General Algorithm.

    ``ceil(count / capacity)`` groups, all full except possibly the last —
    this is what gives packed trees their near-100% space utilisation.
    """
    if count < 1:
        raise PackingError("count must be >= 1")
    if capacity < 1:
        raise PackingError("capacity must be >= 1")
    full, rest = divmod(count, capacity)
    sizes = [capacity] * full
    if rest:
        sizes.append(rest)
    return sizes


def ceil_root(value: int, k: int) -> int:
    """Exact ``ceil(value ** (1/k))`` for positive integers.

    Floating-point ``value ** (1/k)`` rounds unpredictably at perfect powers
    (``27 ** (1/3)`` is 3.0000000000000004), which would give STR an extra,
    nearly-empty slab exactly on the clean inputs tests like to use; this
    helper nails the integer root before ceiling.
    """
    if value < 1 or k < 1:
        raise PackingError("value and k must be >= 1")
    if k == 1 or value == 1:
        return value
    root = int(round(value ** (1.0 / k)))
    while root ** k < value:
        root += 1
    while root > 1 and (root - 1) ** k >= value:
        root -= 1
    return root


def ceil_pow_frac(value: int, num: int, den: int) -> int:
    """Exact ``ceil(value ** (num/den))`` for positive integers.

    Computed as the smallest integer ``m`` with ``m ** den >= value ** num``
    so perfect powers never suffer float rounding.  STR's slab width is
    ``n * ceil(P ** ((k-1)/k))``, which calls this with num=k-1, den=k.
    """
    if value < 1 or num < 0 or den < 1:
        raise PackingError("invalid ceil_pow_frac arguments")
    if num == 0:
        return 1
    target = value ** num
    guess = int(round(float(value) ** (num / den)))
    m = max(1, guess)
    while m ** den < target:
        m += 1
    while m > 1 and (m - 1) ** den >= target:
        m -= 1
    return m


def validate_permutation(perm: np.ndarray, count: int) -> np.ndarray:
    """Defensive check that an algorithm returned a real permutation."""
    p = np.asarray(perm)
    if p.shape != (count,):
        raise PackingError(f"permutation shape {p.shape}, expected ({count},)")
    if not np.array_equal(np.sort(p), np.arange(count)):
        raise PackingError("ordering is not a permutation")
    return p.astype(np.int64)


def _require_rects(rects: RectArray) -> None:
    if not isinstance(rects, RectArray):
        raise GeometryError("expected a RectArray")
