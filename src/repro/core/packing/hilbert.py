"""Hilbert Sort (HS) packing — Kamel & Faloutsos (1993).

Rectangle centers are ordered by their position along the Hilbert
space-filling curve; consecutive runs of ``capacity`` become nodes.  The
Hilbert curve's locality makes the resulting nodes compact in *both*
dimensions, which is why HS was the state of the art the paper measures
STR against.

Float coordinates are handled as the paper sketches: centers are snapped
onto a fine conceptual integer grid (see
:mod:`repro.hilbert.float_key`) whose resolution ``order`` is a parameter
(default 16 bits/dimension; ample for unit-square data).
"""

from __future__ import annotations

import numpy as np

from ...core.geometry import RectArray
from ...hilbert.float_key import DEFAULT_ORDER, float_hilbert_keys
from ...obs import runtime as obs
from .base import PackingAlgorithm, PackingError, validate_permutation

__all__ = ["HilbertSort"]


class HilbertSort(PackingAlgorithm):
    """Sort by Hilbert index of rectangle centers."""

    name = "HS"

    def __init__(self, curve_order: int = DEFAULT_ORDER):
        if curve_order < 1:
            raise PackingError(
                f"curve order must be >= 1, got {curve_order}"
            )
        #: Bits per dimension of the conceptual grid (paper Section 2.2).
        self.curve_order = curve_order

    def order_keys(self, rects: RectArray) -> np.ndarray:
        """The uint64 Hilbert keys this algorithm sorts by (exposed for
        diagnostics and the curve-order ablation)."""
        centers = rects.centers()
        bounds = rects.mbr()
        return float_hilbert_keys(centers, bounds, order=self.curve_order)

    def order(self, rects: RectArray, capacity: int) -> np.ndarray:
        self._check(rects, capacity)
        with obs.span("hs.key", curve_order=self.curve_order,
                      count=len(rects)):
            keys = self.order_keys(rects)
        with obs.span("hs.sort", count=len(rects)):
            perm = np.argsort(keys, kind="stable")
        return validate_permutation(perm, len(rects))

    def __repr__(self) -> str:
        return f"HilbertSort(curve_order={self.curve_order})"
