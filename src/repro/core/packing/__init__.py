"""R-tree packing algorithms (the paper's subject).

``SortTileRecursive`` is the paper's contribution; ``HilbertSort`` and
``NearestX`` are the baselines it is evaluated against.
"""

from .base import PackingAlgorithm, PackingError, leaf_group_sizes
from .external import (
    ExternalRectSorter,
    external_bulk_load,
    external_str_order,
)
from .hilbert import HilbertSort
from .nearest_x import NearestX
from .registry import ALGORITHMS, algorithm_names, make_algorithm
from .str_ import SortTileRecursive, str_slab_sizes

__all__ = [
    "PackingAlgorithm",
    "PackingError",
    "leaf_group_sizes",
    "ExternalRectSorter",
    "external_str_order",
    "external_bulk_load",
    "SortTileRecursive",
    "str_slab_sizes",
    "HilbertSort",
    "NearestX",
    "ALGORITHMS",
    "make_algorithm",
    "algorithm_names",
]
