"""Nearest-X (NX) packing — Roussopoulos & Leifker (1985).

The simplest packing order: sort rectangles by the x-coordinate of their
center and pack consecutive runs.  The original paper gives no detail on
which x to use; following our paper's reading ("we assume that the
x-coordinate of the rectangle's center is used") we sort by center.

NX ignores all dimensions but the first, so leaves become tall thin
vertical strips (Figure 2 of the paper), giving enormous perimeters and —
as the paper's tables show — hopeless region-query performance.  It remains
competitive only for point queries on point data, and exists here as the
baseline that demonstrates exactly that.
"""

from __future__ import annotations

import numpy as np

from ...core.geometry import RectArray
from ...obs import runtime as obs
from .base import PackingAlgorithm, validate_permutation

__all__ = ["NearestX"]


class NearestX(PackingAlgorithm):
    """Sort by center x-coordinate (dimension 0)."""

    name = "NX"

    def __init__(self, dimension: int = 0):
        if dimension < 0:
            raise ValueError("dimension must be >= 0")
        self.dimension = dimension

    def order(self, rects: RectArray, capacity: int) -> np.ndarray:
        self._check(rects, capacity)
        if self.dimension >= rects.ndim:
            raise ValueError(
                f"sort dimension {self.dimension} out of range for "
                f"{rects.ndim}-d data"
            )
        keys = rects.centers()[:, self.dimension]
        with obs.span("nx.sort", dim=self.dimension, count=len(rects)):
            perm = np.argsort(keys, kind="stable")
        return validate_permutation(perm, len(rects))

    def __repr__(self) -> str:
        return f"NearestX(dimension={self.dimension})"
