"""External-memory bulk loading.

The paper's General Algorithm starts from a *data file* ("Preprocess the
data file so that the r rectangles are ordered...") — in 1997 the input
typically did not fit in memory, and packing was attractive precisely
because it only needs sorts, which have classic external-memory
implementations.  This module provides that substrate:

* :class:`ExternalRectSorter` — run-generation + k-way merge sort of
  rectangle records keyed by an arbitrary float key, spilling fixed-size
  binary runs to a spill directory.
* :func:`external_str_order` — STR's two-pass structure on top of it:
  sort by center-x into slices, then sort each slice by center-y, writing
  the final order as a stream of (rect, id) records.
* :func:`external_bulk_load` — end-to-end: stream -> ordered runs ->
  packed pages, with peak memory bounded by ``chunk_size`` records.

In-memory packing (:mod:`repro.rtree.bulk`) remains the fast path; this
exists for datasets beyond RAM and is validated against it bit-for-bit on
shared inputs (same capacity, same data => identical leaf MBR multisets).
"""

from __future__ import annotations

import heapq
import os
import struct
import tempfile
from typing import Iterable, Iterator

import numpy as np

from ...core.geometry import GeometryError, RectArray
from ...obs import runtime as obs
from .base import PackingError
from .str_ import str_slab_sizes

__all__ = [
    "RectRecord",
    "ExternalRectSorter",
    "external_str_order",
    "external_bulk_load",
]

# One record: key float64, id int64, k lo float64, k hi float64.
_KEY_ID = struct.Struct("<dq")


def _record_struct(ndim: int) -> struct.Struct:
    return struct.Struct(f"<dq{2 * ndim}d")


class RectRecord(tuple):
    """A ``(key, data_id, lo..., hi...)`` record; plain tuple subtype."""

    __slots__ = ()


class ExternalRectSorter:
    """Run-generation + k-way-merge external sort of rectangle records.

    Records are ``(key, id, lo..., hi...)`` tuples.  ``chunk_size`` bounds
    how many records are held in memory at once; each sorted chunk is
    spilled as a binary run file, and :meth:`sorted_records` merges the
    runs with a heap.

    Spills are **crash-clean**: every run is written to a pid-suffixed
    temporary name, fsynced, and published with ``os.replace``, so a
    killed sorter never leaves a torn run behind — only ignorable
    ``*.tmp-*`` litter.  By default runs live in an ephemeral temporary
    directory; passing ``staging`` pins them to a named, context-managed
    directory (removed on clean exit *and* on exception, kept only by a
    hard kill), and ``reuse_runs=True`` re-opens such a directory and
    adopts its published runs instead of re-sorting them —
    :attr:`resumed_records` tells the caller how many records are
    already sorted so only the remainder needs re-feeding.
    """

    def __init__(self, ndim: int, *, chunk_size: int = 100_000,
                 spill_dir: str | None = None,
                 staging: str | os.PathLike | None = None,
                 reuse_runs: bool = False):
        if ndim < 1:
            raise GeometryError("ndim must be >= 1")
        if chunk_size < 2:
            raise PackingError("chunk_size must be >= 2")
        self.ndim = ndim
        self.chunk_size = chunk_size
        self._struct = _record_struct(ndim)
        self._runs: list[str] = []
        self._buffer: list[tuple] = []
        self._count = 0
        self._spills = 0
        self._resumed = 0
        self._keep = False
        if staging is not None:
            if spill_dir is not None:
                raise PackingError("pass spill_dir or staging, not both")
            # Imported here so core.packing never loads repro.pipeline
            # unless persistent spill staging is actually requested.
            from ...pipeline.staging import StagingDir

            self._tmp = None
            self._staging = StagingDir(staging)
            self._dir = self._staging.path
            if reuse_runs:
                self._adopt_runs()
        elif reuse_runs:
            raise PackingError("reuse_runs requires a staging directory")
        else:
            self._tmp = tempfile.TemporaryDirectory(
                prefix="repro-extsort-", dir=spill_dir
            )
            self._staging = None
            self._dir = self._tmp.name

    def _adopt_runs(self) -> None:
        """Adopt published runs from a previous (killed) sorter."""
        self._staging.sweep_tmp()
        for name in sorted(os.listdir(self._dir)):
            if not (name.startswith("run-") and name.endswith(".bin")):
                continue
            path = os.path.join(self._dir, name)
            size = os.path.getsize(path)
            if size % self._struct.size:
                # Published runs are atomic; a short file means the
                # directory was damaged at rest, not torn by a crash.
                raise PackingError(
                    f"{path}: spill run is not a whole number of "
                    f"records ({size} bytes)")
            records = size // self._struct.size
            self._runs.append(path)
            self._count += records
            self._resumed += records
            self._spills += 1
        obs.inc("extsort.records_resumed", self._resumed)

    # -- feeding -------------------------------------------------------------

    def add(self, key: float, data_id: int, lo, hi) -> None:
        """Add one record; spills a run when the buffer fills."""
        record = (float(key), int(data_id), *map(float, lo), *map(float, hi))
        self._buffer.append(record)
        self._count += 1
        if len(self._buffer) >= self.chunk_size:
            self._spill()

    def add_many(self, records: Iterable[tuple]) -> None:
        """Add ``(key, id, lo, hi)`` records in bulk."""
        for key, data_id, lo, hi in records:
            self.add(key, data_id, lo, hi)

    def __len__(self) -> int:
        return self._count

    @property
    def run_count(self) -> int:
        """Spilled runs so far (diagnostic; excludes the live buffer)."""
        return self._spills

    @property
    def resumed_records(self) -> int:
        """Records adopted from pre-existing runs (``reuse_runs=True``).

        These are already sorted on disk; a resuming caller feeds only
        the remainder of its input.
        """
        return self._resumed

    def keep(self) -> None:
        """Preserve the staging directory when this sorter closes (only
        meaningful with ``staging``; lets a caller hand the runs to a
        later resume explicitly)."""
        self._keep = True

    # -- spilling ------------------------------------------------------------

    def _spill(self) -> None:
        if not self._buffer:
            return
        with obs.span("extsort.spill", run=self._spills,
                      count=len(self._buffer)):
            self._buffer.sort()
            path = os.path.join(self._dir, f"run-{self._spills:06d}.bin")
            # Publish atomically: a crash mid-spill leaves a *.tmp-<pid>
            # file that resume sweeps, never a torn run it would trust.
            tmp = f"{path}.tmp-{os.getpid()}"
            with open(tmp, "wb") as f:
                for record in self._buffer:
                    f.write(self._struct.pack(*record))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        obs.inc("extsort.records_spilled", len(self._buffer))
        self._runs.append(path)
        self._spills += 1
        self._buffer = []

    def _iter_run(self, path: str) -> Iterator[tuple]:
        size = self._struct.size
        with open(path, "rb") as f:
            while True:
                blob = f.read(size * 4096)
                if not blob:
                    break
                for off in range(0, len(blob), size):
                    yield self._struct.unpack_from(blob, off)

    # -- draining ------------------------------------------------------------

    def sorted_records(self) -> Iterator[tuple]:
        """Yield every record in key order; consumes the sorter."""
        self._spill()
        streams = [self._iter_run(path) for path in self._runs]
        yield from heapq.merge(*streams)

    def close(self) -> None:
        """Delete all spill files (unless :meth:`keep` was called)."""
        if self._tmp is not None:
            self._tmp.cleanup()
        elif not self._keep:
            self._staging.remove()

    def __enter__(self) -> "ExternalRectSorter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _center_key(record: tuple, ndim: int, dim: int) -> float:
    lo = record[2 + dim]
    hi = record[2 + ndim + dim]
    return (lo + hi) / 2.0


def external_str_order(
    records: Iterable[tuple], ndim: int, capacity: int, *,
    chunk_size: int = 100_000, spill_dir: str | None = None,
) -> Iterator[tuple]:
    """Stream records in STR order using external sorts only.

    ``records`` yields ``(key_ignored, id, lo, hi)`` tuples (the key slot
    is recomputed).  Two passes: sort by center of dimension ``dim``; cut
    into the paper's slabs; recurse into each slab with the next
    dimension.  Peak memory is ``O(chunk_size)`` records.
    """
    if capacity < 1:
        raise PackingError("capacity must be >= 1")

    def flatten(stream: Iterable[tuple]) -> Iterator[tuple]:
        """User records are (key, id, lo-tuple, hi-tuple); flatten them."""
        for key, data_id, lo, hi in stream:
            yield (float(key), int(data_id), *map(float, lo),
                   *map(float, hi))

    def order_pass(stream: Iterable[tuple], count_hint: int | None,
                   dim: int) -> Iterator[tuple]:
        with ExternalRectSorter(ndim, chunk_size=chunk_size,
                                spill_dir=spill_dir) as sorter:
            for record in stream:
                data_id = record[1]
                lo = record[2:2 + ndim]
                hi = record[2 + ndim:2 + 2 * ndim]
                sorter.add(_center_key(record, ndim, dim), data_id, lo, hi)
            total = len(sorter)
            if total == 0:
                return
            dims_left = ndim - dim
            if dims_left <= 1:
                yield from sorter.sorted_records()
                return
            sizes = str_slab_sizes(total, capacity, dims_left)
            stream_sorted = sorter.sorted_records()
            for size in sizes:
                slab = [next(stream_sorted) for _ in range(size)]
                yield from order_pass(iter(slab), size, dim + 1)

    # NOTE: slabs are materialised one at a time; a slab holds
    # capacity * ceil(P^((k-1)/k)) records, which for the paper's
    # parameters (k=2, n=100) is ~sqrt(P)*100 — far below the input size.
    yield from order_pass(flatten(records), None, 0)


def external_bulk_load(
    records: Iterable[tuple], ndim: int, *, capacity: int = 100,
    store=None, chunk_size: int = 100_000, spill_dir: str | None = None,
):
    """Bulk-load a paged R-tree from a record stream with bounded memory.

    ``records`` yields ``(key_ignored, data_id, lo, hi)``.  Returns the
    same ``(tree, report)`` pair as :func:`repro.rtree.bulk.bulk_load`.
    Leaf ordering is STR (the only algorithm here needing the external
    machinery; NX/HS are single external sorts users can run through
    :class:`ExternalRectSorter` directly).

    Upper levels are built in memory: even a 10^9-rectangle input has only
    ~10^7 leaf MBRs at capacity 100, well within RAM — matching how
    real systems implement packed loading.
    """
    from ...storage.page import NodePage, encode_node, required_page_size
    from ...storage.store import MemoryPageStore

    page_size = required_page_size(capacity, ndim)
    if store is None:
        store = MemoryPageStore(page_size)

    ordered = external_str_order(records, ndim, capacity,
                                 chunk_size=chunk_size, spill_dir=spill_dir)

    # Write leaves straight off the stream.
    leaf_mbrs_lo: list[tuple] = []
    leaf_mbrs_hi: list[tuple] = []
    leaf_pages: list[int] = []
    batch: list[tuple] = []

    def flush_leaf() -> None:
        ids = np.array([r[1] for r in batch], dtype=np.int64)
        los = np.array([r[2:2 + ndim] for r in batch])
        his = np.array([r[2 + ndim:2 + 2 * ndim] for r in batch])
        rects = RectArray(los, his, copy=False)
        page_id = store.allocate()
        store.write_page(
            page_id,
            encode_node(NodePage(level=0, children=ids, rects=rects),
                        store.page_size),
        )
        leaf_pages.append(page_id)
        mbr = rects.mbr()
        leaf_mbrs_lo.append(mbr.lo)
        leaf_mbrs_hi.append(mbr.hi)
        batch.clear()

    # The leaf loop drives the whole external pipeline (sorts and spills
    # happen lazily as `ordered` is consumed), so this span is the total
    # external-load time; nested extsort.spill spans attribute the sorts.
    with obs.span("bulk.external_load", capacity=capacity):
        total = 0
        for record in ordered:
            batch.append(record)
            total += 1
            if len(batch) == capacity:
                flush_leaf()
        if batch:
            flush_leaf()
    if total == 0:
        raise GeometryError("cannot bulk-load zero records")

    # Upper levels: reuse the in-memory machinery over the leaf MBRs.
    from ...core.packing.str_ import SortTileRecursive
    from ...rtree.paged import PagedRTree
    from ...rtree.bulk import BulkLoadReport, pack_upper_levels
    from ...storage.counters import IOStats

    level_rects = RectArray(np.array(leaf_mbrs_lo), np.array(leaf_mbrs_hi))
    level_ids = np.array(leaf_pages, dtype=np.int64)
    root_page, height = pack_upper_levels(
        store, SortTileRecursive(), capacity, level_rects, level_ids,
    )

    tree = PagedRTree(store, root_page, height=height, ndim=ndim,
                      capacity=capacity, size=total)
    # Durable destinations get the same atomic superblock commit as
    # bulk_load, so externally-built files are self-describing too.
    tree.commit_meta()
    report = BulkLoadReport(
        pages_written=store.stats.disk_writes,
        height=tree.height,
        leaf_pages=len(leaf_pages),
        build_io=IOStats(disk_writes=store.stats.disk_writes),
    )
    return tree, report
