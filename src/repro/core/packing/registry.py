"""Name-based lookup of packing algorithms.

Experiment configs, the CLI and the benchmarks refer to algorithms by the
paper's abbreviations (``STR``, ``HS``, ``NX``); this registry resolves
those (case-insensitively, with a few aliases) to fresh instances.
"""

from __future__ import annotations

from typing import Callable

from .base import PackingAlgorithm, PackingError
from .hilbert import HilbertSort
from .nearest_x import NearestX
from .str_ import SortTileRecursive

__all__ = ["ALGORITHMS", "make_algorithm", "algorithm_names"]

ALGORITHMS: dict[str, Callable[[], PackingAlgorithm]] = {
    "str": SortTileRecursive,
    "sort-tile-recursive": SortTileRecursive,
    "hs": HilbertSort,
    "hilbert": HilbertSort,
    "hilbert-sort": HilbertSort,
    "nx": NearestX,
    "nearest-x": NearestX,
}

#: Canonical paper order for reports: the proposal first, then baselines.
PAPER_ORDER = ("STR", "HS", "NX")


def make_algorithm(name: str) -> PackingAlgorithm:
    """Instantiate a packing algorithm from a paper abbreviation or alias."""
    try:
        return ALGORITHMS[name.strip().lower()]()
    except KeyError:
        raise PackingError(
            f"unknown packing algorithm {name!r}; "
            f"known: {sorted(set(ALGORITHMS))}"
        ) from None


def algorithm_names() -> tuple[str, ...]:
    """Canonical names in the order the paper reports them."""
    return PAPER_ORDER
