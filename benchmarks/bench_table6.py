"""Bench: regenerate Table 6 (Long Beach areas and perimeters).

Paper shapes: STR produces significantly smaller areas than both HS and
NX, slightly smaller perimeters than HS, and NX's perimeter is ~7x STR's.
"""

from repro.experiments import gis_tables

from conftest import emit


def test_table6(benchmark, bench_config, gis_cache):
    table = benchmark.pedantic(
        gis_tables.table6, args=(bench_config, gis_cache),
        rounds=1, iterations=1,
    )
    emit("table6", table)
    rows = {r[0]: r[1:] for r in table.data_rows()}
    str_a, hs_a, nx_a = rows["leaf area"]
    str_p, hs_p, nx_p = rows["leaf perimeter"]
    assert str_a < hs_a and str_a < nx_a
    assert str_p < hs_p
    assert nx_p > 3 * str_p
