"""Bench: regenerate Table 7 (VLSI disk accesses vs buffer size).

Paper shapes: HS performs slightly *better* than STR for point queries
(3-11%) and practically the same for region queries; NX is far worse.
"""

from repro.experiments import vlsi_tables

from conftest import emit


def test_table7(benchmark, bench_config, vlsi_cache):
    table = benchmark.pedantic(
        vlsi_tables.table7, args=(bench_config, vlsi_cache),
        rounds=1, iterations=1,
    )
    emit("table7", table)
    rows = table.data_rows()
    # Rows where the buffer is far smaller than the tree are meaningful.
    tree_pages = vlsi_cache.tree(vlsi_tables.DATASET_LABEL, "STR").page_count
    meaningful = [r for r in rows if r[0] * 4 < tree_pages]
    assert meaningful, "all buffers held the whole tree; enlarge dataset"
    for row in meaningful:
        assert 0.8 < row[4] < 1.2      # HS/STR ~ tie (HS often ahead)
        assert row[5] > 1.5            # NX/STR clearly worse
