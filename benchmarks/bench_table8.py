"""Bench: regenerate Table 8 (VLSI areas and perimeters).

Paper shapes: HS has slightly smaller leaf area and perimeter than STR on
this highly skewed data (consistent with its small point-query edge); NX
is an order of magnitude worse on both.
"""

from repro.experiments import vlsi_tables

from conftest import emit


def test_table8(benchmark, bench_config, vlsi_cache):
    table = benchmark.pedantic(
        vlsi_tables.table8, args=(bench_config, vlsi_cache),
        rounds=1, iterations=1,
    )
    emit("table8", table)
    rows = {r[0]: r[1:] for r in table.data_rows()}
    str_p, hs_p, nx_p = rows["leaf perimeter"]
    str_a, hs_a, nx_a = rows["leaf area"]
    assert nx_p > 1.5 * max(str_p, hs_p)
    # HS and STR close on both metrics (within ~35% either way).
    assert 0.65 < hs_p / str_p < 1.35
    assert 0.5 < hs_a / str_a < 1.5
