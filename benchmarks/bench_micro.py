"""Micro-benchmarks: throughput of the core operations.

Unlike the ``bench_table*``/``bench_figures*`` files (which regenerate
paper artefacts once), these use pytest-benchmark's normal repeated-timing
mode to track the performance of the library's hot paths:

* packing-order computation for each algorithm (the bulk-load sort cost —
  the paper's claim that STR is "simple" shows up here as sort-dominated
  runtime);
* full bulk load;
* query execution through the buffer pool;
* the page codec.
"""

import numpy as np
import pytest

from repro import Rect, RectArray, bulk_load, make_algorithm
from repro.datasets import uniform_points
from repro.storage.page import decode_node, encode_node, required_page_size
from repro.storage.store import MemoryPageStore

N = 50_000


@pytest.fixture(scope="module")
def points():
    return uniform_points(N, seed=0)


@pytest.mark.parametrize("algo", ["STR", "HS", "NX"])
def test_packing_order_throughput(benchmark, points, algo):
    algorithm = make_algorithm(algo)
    benchmark(algorithm.order, points, 100)


@pytest.mark.parametrize("algo", ["STR", "HS", "NX"])
def test_bulk_load_throughput(benchmark, points, algo):
    algorithm = make_algorithm(algo)
    benchmark(lambda: bulk_load(points, algorithm, capacity=100))


def test_point_query_throughput(benchmark, points):
    tree, _ = bulk_load(points, make_algorithm("STR"), capacity=100)
    searcher = tree.searcher(buffer_pages=250)
    rng = np.random.default_rng(1)
    queries = [Rect.from_point(tuple(p)) for p in rng.random((500, 2))]

    def run():
        for q in queries:
            searcher.search(q)

    benchmark(run)


def test_region_query_throughput(benchmark, points):
    tree, _ = bulk_load(points, make_algorithm("STR"), capacity=100)
    searcher = tree.searcher(buffer_pages=250)
    rng = np.random.default_rng(1)
    queries = [
        Rect(tuple(lo), tuple(np.minimum(lo + 0.1, 1.0)))
        for lo in rng.random((100, 2))
    ]

    def run():
        for q in queries:
            searcher.search(q)

    benchmark(run)


def test_page_encode_throughput(benchmark):
    rng = np.random.default_rng(2)
    lo = rng.random((100, 2))
    rects = RectArray(lo, lo + 0.01)
    from repro.storage.page import NodePage

    node = NodePage(level=0, children=np.arange(100), rects=rects)
    size = required_page_size(100, 2)
    benchmark(encode_node, node, size)


def test_page_decode_throughput(benchmark):
    rng = np.random.default_rng(2)
    lo = rng.random((100, 2))
    rects = RectArray(lo, lo + 0.01)
    from repro.storage.page import NodePage

    node = NodePage(level=0, children=np.arange(100), rects=rects)
    data = encode_node(node, required_page_size(100, 2))
    benchmark(decode_node, data)


def test_store_write_throughput(benchmark):
    store = MemoryPageStore(4096)
    payload = b"\x42" * 4096
    pid = store.allocate()
    benchmark(store.write_page, pid, payload)
