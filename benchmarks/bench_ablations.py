"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these probe the knobs the paper fixes:

* node capacity (the paper's n=100; fan-out 25-100 is called typical),
* Hilbert curve order (our float-grid resolution parameter),
* buffer replacement policy (LRU vs FIFO vs CLOCK vs pinned upper levels,
  the ref.-[8] discussion in Section 3),
* internal-level re-ordering in the bulk loader,
* dimensionality (the paper's k-d generalisation of STR).

Each prints a small table into results/ like the paper benches.
"""

import numpy as np

from repro import bulk_load, make_algorithm
from repro.datasets import uniform_points
from repro.experiments.report import Table
from repro.queries import region_queries, point_queries
from repro.rtree.stats import measure_paged

from conftest import emit


def _mean_accesses(tree, workload, buffer_pages, policy="lru",
                   pin_upper=False):
    searcher = tree.searcher(buffer_pages, policy=policy)
    if pin_upper:
        searcher.pin_levels(range(1, tree.height))
    for q in workload:
        searcher.search(q)
    return searcher.disk_accesses / len(workload)


def test_capacity_sweep(benchmark, bench_config):
    """Fan-out 25-200: bigger nodes -> fewer, larger pages per query."""
    points = uniform_points(50_000, seed=1)
    workload = region_queries(0.1, 500, seed=2)

    def run():
        table = Table(
            title="Ablation: node capacity (STR, 50k points, 1% queries, "
                  "buffer 10)",
            columns=("capacity", "pages", "height", "accesses/query",
                     "leaf perimeter"),
        )
        for capacity in (25, 50, 100, 200):
            tree, _ = bulk_load(points, make_algorithm("STR"),
                                capacity=capacity)
            q = measure_paged(tree)
            table.add_row(
                capacity, tree.page_count, tree.height,
                _mean_accesses(tree, workload, 10), q.leaf_perimeter,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_capacity", table)
    accesses = table.column("accesses/query")
    assert accesses == sorted(accesses, reverse=True)  # fan-out helps


def test_hilbert_curve_order(benchmark, bench_config):
    """Grid resolution: beyond ~8 bits the ordering (hence the tree) is
    essentially converged for 50k unit-square points."""
    points = uniform_points(50_000, seed=1)
    workload = point_queries(500, seed=3)

    def run():
        table = Table(
            title="Ablation: Hilbert curve order (HS, 50k points, point "
                  "queries, buffer 10)",
            columns=("curve bits", "accesses/query", "leaf area"),
        )
        from repro.core.packing import HilbertSort

        for bits in (2, 4, 8, 16, 24):
            tree, _ = bulk_load(points, HilbertSort(curve_order=bits),
                                capacity=100)
            table.add_row(bits, _mean_accesses(tree, workload, 10),
                          measure_paged(tree).leaf_area)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_hilbert_order", table)
    accesses = table.column("accesses/query")
    # Coarse grids hurt; high resolutions converge within noise.
    assert accesses[0] > accesses[-1]
    assert abs(accesses[-1] - accesses[-2]) < 0.15 * accesses[-1] + 0.05


def test_buffer_policies(benchmark, bench_config):
    """LRU (the paper's choice) vs FIFO vs CLOCK vs pinned upper levels."""
    points = uniform_points(50_000, seed=1)
    tree, _ = bulk_load(points, make_algorithm("STR"), capacity=100)
    workload = point_queries(2_000, seed=4)

    def run():
        table = Table(
            title="Ablation: buffer policy (STR, 50k points, point "
                  "queries, buffer 25)",
            columns=("policy", "accesses/query"),
        )
        for policy in ("lru", "fifo", "clock"):
            table.add_row(policy, _mean_accesses(tree, workload, 25,
                                                 policy=policy))
        table.add_row("lru+pin-upper",
                      _mean_accesses(tree, workload, 25, pin_upper=True))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_buffer_policy", table)
    rows = dict(zip(table.column("policy"), table.column("accesses/query")))
    # The paper's [8] point: pinning buys little over plain LRU here.
    assert abs(rows["lru+pin-upper"] - rows["lru"]) < 0.35 * rows["lru"] + 0.1
    # CLOCK approximates LRU; FIFO is never dramatically better than LRU.
    assert rows["clock"] < rows["fifo"] * 1.2 + 0.1


def test_internal_reordering(benchmark, bench_config):
    """Re-sorting upper levels vs packing them in emission order."""
    points = uniform_points(100_000, seed=1)
    workload = region_queries(0.1, 500, seed=5)

    def run():
        table = Table(
            title="Ablation: internal-level reordering (100k points, 1% "
                  "queries, buffer 10)",
            columns=("algorithm", "reorder", "accesses/query"),
        )
        for name in ("STR", "HS"):
            for reorder in (True, False):
                tree, _ = bulk_load(points, make_algorithm(name),
                                    capacity=100, reorder_internal=reorder)
                table.add_row(name, reorder,
                              _mean_accesses(tree, workload, 10))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_internal_reorder", table)
    acc = table.column("accesses/query")
    # Emission order is already nearly sorted for these algorithms, so the
    # difference must be small — reordering is about robustness, not wins.
    assert abs(acc[0] - acc[1]) < 0.3 * acc[0] + 0.1


def test_three_dimensional_str(benchmark, bench_config):
    """STR's k-d generalisation: 3-D point data, cube queries."""
    rng = np.random.default_rng(6)
    from repro.core.geometry import Rect, RectArray

    pts = rng.random((50_000, 3))
    rects = RectArray.from_points(pts)
    lows = rng.random((300, 3)) * 0.8
    queries = [Rect(tuple(lo), tuple(lo + 0.2)) for lo in lows]

    def run():
        table = Table(
            title="Ablation: 3-D packing (50k points, 0.8% volume queries, "
                  "buffer 10)",
            columns=("algorithm", "accesses/query"),
        )
        for name in ("STR", "HS", "NX"):
            tree, _ = bulk_load(rects, make_algorithm(name), capacity=100)
            searcher = tree.searcher(10)
            for q in queries:
                searcher.search(q)
            table.add_row(name, searcher.disk_accesses / len(queries))
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_3d", table)
    rows = dict(zip(table.column("algorithm"),
                    table.column("accesses/query")))
    assert rows["STR"] <= rows["HS"] * 1.1
    assert rows["NX"] > 1.5 * rows["STR"]
