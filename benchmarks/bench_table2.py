"""Bench: regenerate Table 2 (disk accesses, synthetic data, buffer=10).

Shape expectations from the paper:
* HS needs ~26-42% more accesses than STR for point queries;
* NX ties STR only for point queries on point data, collapses elsewhere;
* the HS/STR gap narrows as the query region grows.
"""

import numpy as np

from repro.experiments import synthetic_tables

from conftest import emit


def test_table2(benchmark, bench_config, syn_cache):
    table = benchmark.pedantic(
        synthetic_tables.table2, args=(bench_config, syn_cache),
        rounds=1, iterations=1,
    )
    emit("table2", table)
    n = len(bench_config.sizes)
    hs_ratio = table.column("HS/STR")
    nx_ratio = table.column("NX/STR")
    nx_d5_ratio = table.column("NX/STR(d5)")

    point_band = slice(0, n)
    r1_band = slice(n, 2 * n)
    r9_band = slice(2 * n, 3 * n)

    assert all(r > 1.15 for r in hs_ratio[point_band])
    assert all(0.85 < r < 1.2 for r in nx_ratio[point_band])
    assert all(r > 1.8 for r in nx_ratio[r1_band])
    assert all(r > 1.8 for r in nx_d5_ratio[point_band])
    assert (np.mean(hs_ratio[point_band]) > np.mean(hs_ratio[r1_band])
            > np.mean(hs_ratio[r9_band]))
