"""Bench: regenerate Table 3 (disk accesses, synthetic data, buffer=250).

Same shapes as Table 2, at a buffer that holds much of the smaller trees
(the paper notes the smallest sizes are then not meaningful, so the shape
assertions only cover sizes whose tree exceeds the buffer).
"""

from repro.experiments import synthetic_tables
from repro.experiments.runner import PAPER_CAPACITY

from conftest import emit


def test_table3(benchmark, bench_config, syn_cache):
    table = benchmark.pedantic(
        synthetic_tables.table3, args=(bench_config, syn_cache),
        rounds=1, iterations=1,
    )
    emit("table3", table)
    sizes = bench_config.sizes
    n = len(sizes)
    hs_ratio = table.column("HS/STR")
    # Only sizes where the tree is clearly bigger than 250 pages count.
    meaningful = [i for i, s in enumerate(sizes)
                  if s / PAPER_CAPACITY > 2 * 250]
    for i in meaningful:
        assert hs_ratio[i] > 1.1               # point queries band
        assert 0.95 < hs_ratio[2 * n + i] < 1.35  # 9% band: near tie
