"""Bench: regenerate Table 10 (CFD areas and perimeters).

Paper shapes (the interesting inversion): HS has the *smallest* leaf
perimeter yet a leaf area nearly twice STR's — and still loses point
queries, showing area dominates for point queries on skewed point data.
"""

from repro.experiments import cfd_tables

from conftest import emit


def test_table10(benchmark, bench_config, cfd_cache):
    table = benchmark.pedantic(
        cfd_tables.table10, args=(bench_config, cfd_cache),
        rounds=1, iterations=1,
    )
    emit("table10", table)
    rows = {r[0]: r[1:] for r in table.data_rows()}
    str_a, hs_a, nx_a = rows["leaf area"]
    str_p, hs_p, nx_p = rows["leaf perimeter"]
    assert hs_p < str_p          # HS perimeter smallest
    assert hs_a > 1.2 * str_a    # ...but HS area much larger
    assert nx_p > 2 * str_p      # NX perimeter worst
