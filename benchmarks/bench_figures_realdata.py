"""Bench: regenerate Figures 10-12 and the SVG Figures 2-6.

Figure 10: Long Beach point-query accesses vs buffer (STR below HS).
Figure 11: VLSI accesses vs buffer for point/1%/9% (HS ~ STR).
Figure 12: CFD point-query accesses vs buffer (STR clearly below HS).
Figures 2-4: Long Beach leaf MBRs per algorithm (SVG artefacts).
Figures 5-6: CFD scatter plots (SVG artefacts).
"""

import os

from repro.experiments import cfd_tables, gis_tables, vlsi_tables

from conftest import RESULTS_DIR, emit, series_by_label


def test_figure10(benchmark, bench_config, gis_cache):
    series = benchmark.pedantic(
        gis_tables.figure10, args=(bench_config, gis_cache),
        rounds=1, iterations=1,
    )
    emit("fig10", series)
    hs, strs = series
    assert all(h > s for h, s in zip(hs.ys, strs.ys))
    assert hs.ys == sorted(hs.ys, reverse=True)
    assert strs.ys == sorted(strs.ys, reverse=True)


def test_figure11(benchmark, bench_config, vlsi_cache):
    series = benchmark.pedantic(
        vlsi_tables.figure11, args=(bench_config, vlsi_cache),
        rounds=1, iterations=1,
    )
    emit("fig11", series)
    by = series_by_label(series)
    # Query size dominates: every 9% curve above every 1% curve above point.
    tree_pages = vlsi_cache.tree(vlsi_tables.DATASET_LABEL, "STR").page_count
    for x, y9, y1, yp in zip(by["STR 9%"].xs, by["STR 9%"].ys,
                             by["STR 1%"].ys, by["STR Point"].ys):
        if x * 4 < tree_pages:  # meaningful buffers only
            assert y9 > y1 > yp
    # HS ~ STR on this data (within 20%) at meaningful buffers.
    for label in ("Point", "1%", "9%"):
        for x, h, s in zip(by[f"HS {label}"].xs, by[f"HS {label}"].ys,
                           by[f"STR {label}"].ys):
            if x * 4 < tree_pages and s > 0:
                assert 0.8 < h / s < 1.25


def test_figure12(benchmark, bench_config, cfd_cache):
    series = benchmark.pedantic(
        cfd_tables.figure12, args=(bench_config, cfd_cache),
        rounds=1, iterations=1,
    )
    emit("fig12", series)
    hs, strs = series
    assert all(h > s for h, s in zip(hs.ys, strs.ys))
    # The gap narrows as the buffer grows (paper Figure 12's shape).
    assert hs.ys[0] / strs.ys[0] > hs.ys[-1] / strs.ys[-1] - 0.05


def test_figures_2_3_4_svg(benchmark, bench_config, gis_cache):
    svgs = benchmark.pedantic(
        gis_tables.figures_2_3_4, args=(bench_config, gis_cache),
        rounds=1, iterations=1,
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    leaf_pages = gis_cache.tree(
        gis_tables.DATASET_LABEL, "STR"
    ).level_summaries()[-1].node_count
    for algo, svg in svgs.items():
        path = os.path.join(RESULTS_DIR, f"fig234_{algo}.svg")
        with open(path, "w") as f:
            f.write(svg)
        assert svg.count("<rect") == leaf_pages + 2


def test_figures_5_6_svg(benchmark, bench_config):
    svgs = benchmark.pedantic(
        cfd_tables.figures_5_6, kwargs={"seed": bench_config.seed},
        rounds=1, iterations=1,
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for name, svg in svgs.items():
        with open(os.path.join(RESULTS_DIR, f"{name}.svg"), "w") as f:
            f.write(svg)
    assert svgs["figure5_full"].count("<circle") == 5088
