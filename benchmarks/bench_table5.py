"""Bench: regenerate Table 5 (Long Beach disk accesses vs buffer size).

Paper shapes: STR beats HS for point queries (20-50%, growing as the
buffer shrinks); region queries are close (HS 2-6% worse); NX is 2-6x
worse throughout.
"""

from repro.experiments import gis_tables

from conftest import emit


def test_table5(benchmark, bench_config, gis_cache):
    table = benchmark.pedantic(
        gis_tables.table5, args=(bench_config, gis_cache),
        rounds=1, iterations=1,
    )
    emit("table5", table)
    n = len(gis_tables.TABLE5_BUFFERS)
    buffers = gis_tables.TABLE5_BUFFERS
    tree_pages = gis_cache.tree(gis_tables.DATASET_LABEL, "STR").page_count
    # Rows where the buffer holds most of the tree are not meaningful
    # (the paper says the same about its smallest synthetic sizes).
    meaningful = [i for i, b in enumerate(buffers) if 2 * b < tree_pages]
    assert meaningful, "dataset too small for these buffers"
    hs = table.column("HS/STR")
    nx = table.column("NX/STR")
    for i in meaningful:
        assert hs[i] > 1.05                   # point queries: STR wins
        assert 0.95 < hs[2 * n + i] < 1.25    # 9% region: near tie
        assert nx[i] > 1.5                    # NX not competitive
