"""Bench: regenerate Figures 7-9 (synthetic curves).

Figure 7: accesses vs data size, point queries, buffer 10.
Figure 8: accesses vs data size, point queries, buffer 250.
Figure 9: accesses vs data size, 1% region queries, buffer 10.

Paper shapes: in every figure the HS curve lies above the STR curve at
equal density, density-5 lies above density-0, and all curves grow with
data size.
"""

import pytest

from repro.experiments import synthetic_tables

from conftest import emit, series_by_label


def _check_figure(series):
    by = series_by_label(series)
    hs5 = next(by[k] for k in by if k.startswith("HS density = 5"))
    str5 = next(by[k] for k in by if k.startswith("STR density = 5"))
    hs0 = by["HS density = 0"]
    str0 = by["STR density = 0"]
    for i in range(len(hs5.xs)):
        assert hs5.ys[i] > str5.ys[i]
        assert hs0.ys[i] > str0.ys[i]
    for line in series:
        assert line.ys == sorted(line.ys)  # monotone in data size


@pytest.mark.parametrize("fig,runner", [
    ("fig7", synthetic_tables.figure7),
    ("fig8", synthetic_tables.figure8),
    ("fig9", synthetic_tables.figure9),
])
def test_figure(benchmark, bench_config, syn_cache, fig, runner):
    series = benchmark.pedantic(
        runner, args=(bench_config, syn_cache), rounds=1, iterations=1
    )
    emit(fig, series)
    if fig != "fig8":  # fig8's smallest sizes fit the 250-page buffer
        _check_figure(series)
    else:
        by = series_by_label(series)
        hs0 = by["HS density = 0"]
        str0 = by["STR density = 0"]
        # Compare only at sizes whose tree exceeds the buffer.
        for x, h, s in zip(hs0.xs, hs0.ys, str0.ys):
            if x * 1000 / bench_config.capacity > 2 * 250:
                assert h > s
