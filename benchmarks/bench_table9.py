"""Bench: regenerate Table 9 (CFD disk accesses vs buffer size).

Paper shapes: for point queries STR needs clearly fewer accesses than HS,
the gap widening as the buffer shrinks (HS/STR 1.11 at 250 pages up to
1.68 at 10); region queries are near ties; NX is far worse for region
queries.
"""

from repro.experiments import cfd_tables

from conftest import emit


def test_table9(benchmark, bench_config, cfd_cache):
    table = benchmark.pedantic(
        cfd_tables.table9, args=(bench_config, cfd_cache),
        rounds=1, iterations=1,
    )
    emit("table9", table)
    n = len(cfd_tables.TABLE9_BUFFERS)
    rows = table.data_rows()
    point_rows = {r[0]: r for r in rows[:n]}
    assert point_rows[10][4] > 1.15          # HS/STR at the smallest buffer
    assert point_rows[10][4] > point_rows[250][4] - 0.05
    region_ratios = table.column("HS/STR")[n:]
    assert all(0.85 < r < 1.3 for r in region_ratios)
    region_nx = table.column("NX/STR")[n:]
    small_buffer_nx = region_nx[n - 3:n] + region_nx[-3:]
    assert all(r > 2.0 for r in small_buffer_nx)
