"""Bench: regenerate Table 1 (percent of R-tree held by buffer)."""

from repro.experiments import synthetic_tables

from conftest import emit


def test_table1(benchmark, bench_config, syn_cache):
    table = benchmark.pedantic(
        synthetic_tables.table1, args=(bench_config, syn_cache),
        rounds=1, iterations=1,
    )
    emit("table1", table)
    pages = table.column("R-Tree Pages")
    sizes = table.column("Data Size")
    # Page counts are capacity-determined; the paper's exact values must
    # reappear for the sizes shared with the paper.
    paper = {10_000: 101, 25_000: 254, 50_000: 506,
             100_000: 1011, 300_000: 3031}
    for size, got in zip(sizes, pages):
        if size in paper:
            assert got == paper[size], (size, got)
