"""Bench: regenerate Table 4 (synthetic areas and perimeters).

Paper shapes: STR has the smallest leaf perimeter; HS leaf area exceeds
STR's by ~35%; NX leaf perimeter is an order of magnitude larger.
"""

from repro.experiments import synthetic_tables

from conftest import emit


def test_table4(benchmark, bench_config, syn_cache):
    table = benchmark.pedantic(
        synthetic_tables.table4, args=(bench_config, syn_cache),
        rounds=1, iterations=1,
    )
    emit("table4", table)
    rows = table.data_rows()
    labels = [r[0] for r in rows]
    # Two bands x four metrics.
    assert labels == ["leaf area", "total area", "leaf perimeter",
                      "total perimeter"] * 2
    for band in (0, 4):
        leaf_area = rows[band + 0][1:]
        leaf_perim = rows[band + 2][1:]
        # Columns come in (STR, HS, NX) triples per size.
        for i in range(0, len(leaf_area), 3):
            str_a, hs_a, _ = leaf_area[i:i + 3]
            str_p, hs_p, nx_p = leaf_perim[i:i + 3]
            assert hs_a > str_a * 1.1
            assert hs_p > str_p
            assert nx_p > 4 * str_p
