"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.  The
profile is chosen by the ``REPRO_BENCH_PROFILE`` environment variable:

* ``paper`` (default) — the paper's exact protocol: 2,000 queries per
  cell, synthetic sizes 10k-300k, full-size TIGER/CFD stand-ins, VLSI
  scaled to 100k (see DESIGN.md).  A full run takes tens of minutes.
* ``quick`` — the same code over small datasets; minutes, for smoke runs.

Tree caches are session-scoped so tables and figures that share datasets
(e.g. Table 5 and Figure 10) build each tree exactly once per session.
Rendered tables are printed and also written to ``results/`` next to the
repository root for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import cfd_tables, gis_tables, synthetic_tables, vlsi_tables
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.report import Series, Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "paper").lower()
    if profile == "quick":
        return ExperimentConfig.quick()
    if profile == "paper":
        return DEFAULT_CONFIG
    raise ValueError(f"unknown REPRO_BENCH_PROFILE {profile!r}")


@pytest.fixture(scope="session")
def syn_cache(bench_config):
    return synthetic_tables.synthetic_cache(bench_config)


@pytest.fixture(scope="session")
def gis_cache(bench_config):
    return gis_tables.gis_cache(bench_config)


@pytest.fixture(scope="session")
def vlsi_cache(bench_config):
    return vlsi_tables.vlsi_cache(bench_config)


@pytest.fixture(scope="session")
def cfd_cache(bench_config):
    return cfd_tables.cfd_cache(bench_config)


def emit(name: str, result: Table | list[Series]) -> None:
    """Print the regenerated artefact and persist it under results/."""
    if isinstance(result, list):  # figure series
        table = Table(title=name, columns=("series", "x", "y"))
        for line in result:
            for label, x, y in line.as_table_rows():
                table.add_row(label, x, y)
    else:
        table = result
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)


def series_by_label(series: list[Series]) -> dict[str, Series]:
    return {s.label: s for s in series}
