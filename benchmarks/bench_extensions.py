"""Benches for the extension experiments (DESIGN.md section 6).

Not paper artefacts — these exercise the threads the paper opens:
LRU warm-up transient, parallel declustering, packed-vs-dynamic builds,
and the analytical cost model.
"""

from repro.datasets import uniform_points
from repro.experiments import extensions
from repro.queries import point_queries

from conftest import emit


def test_warmup_transient(benchmark, bench_config):
    points = uniform_points(50_000, seed=2)
    from repro import SortTileRecursive, bulk_load

    tree, _ = bulk_load(points, SortTileRecursive(), capacity=100)
    workload = point_queries(2_000, seed=3)

    series = benchmark.pedantic(
        extensions.warmup_curve, args=(tree, workload, 250),
        kwargs={"bucket": 25}, rounds=1, iterations=1,
    )
    emit("ext_warmup", [series])
    # Cold start costs more than steady state: the first bucket is clearly
    # above the late-stream mean (a 250-page buffer over a 506-page tree
    # takes several hundred queries to warm, so the transient is visible).
    steady = sum(series.ys[-10:]) / 10
    assert series.ys[0] > steady * 1.5


def test_parallel_declustering(benchmark, bench_config):
    points = uniform_points(50_000, seed=4)
    table = benchmark.pedantic(
        extensions.parallel_speedup_table, args=(points,),
        rounds=1, iterations=1,
    )
    emit("ext_parallel", table)
    speedups = table.column("speedup")
    disks = table.column("disks")
    # Speedup grows with disks and stays near-ideal for a range workload.
    assert speedups == sorted(speedups)
    for d, s in zip(disks, speedups):
        assert s > 0.6 * d


def test_packed_vs_dynamic(benchmark, bench_config):
    points = uniform_points(5_000, seed=5).centers()
    table = benchmark.pedantic(
        extensions.packed_vs_dynamic_table, args=(points,),
        rounds=1, iterations=1,
    )
    emit("ext_packed_vs_dynamic", table)
    rows = {r[0]: r for r in table.data_rows()}
    packed, guttman, rstar = rows["STR packed"], rows["Guttman"], rows["R*"]
    assert packed[1] < guttman[1] / 10      # claim (a): load time
    assert packed[2] > guttman[2]           # claim (b): space utilisation
    assert packed[3] < guttman[3]           # claim (c): query structure
    # R* improves on Guttman but still does not beat packing.
    assert rstar[4] <= guttman[4] * 1.05    # leaf area
    assert packed[3] <= rstar[3] * 1.05     # packed still at least as good


def test_cost_model_validation(benchmark, bench_config):
    points = uniform_points(50_000, seed=6)
    table = benchmark.pedantic(
        extensions.cost_model_table, args=(points,),
        rounds=1, iterations=1,
    )
    emit("ext_cost_model", table)
    ratios = table.column("pred/meas")
    assert all(0.8 < r < 1.25 for r in ratios)
    predicted = table.column("predicted")
    measured = table.column("measured")
    order = lambda xs: sorted(range(len(xs)), key=lambda i: xs[i])
    assert order(predicted) == order(measured)
